#include "net/switch.hpp"

#include <algorithm>

namespace dtpsim::net {

Switch::Switch(sim::Simulator& sim, std::string name, DeviceParams dev, SwitchParams params)
    : Device(sim, std::move(name), dev), sw_params_(params) {}

void Switch::on_port_added(std::size_t index) {
  mac(index).on_receive = [this, index](const Frame& f, fs_t rx_time) {
    handle_rx(index, f, rx_time);
  };
}

void Switch::add_route(MacAddr addr, std::size_t port_index) {
  fib_[addr] = port_index;
}

std::size_t Switch::route(MacAddr addr) const {
  auto it = fib_.find(addr);
  return it == fib_.end() ? kNoRoute : it->second;
}

fs_t Switch::eligible_time(const Frame& frame, fs_t rx_time) const {
  if (!sw_params_.cut_through) return rx_time + sw_params_.pipeline_latency;
  // Cut-through: the header was available one frame-duration minus one
  // header-duration ago; eligibility is clamped to "now" because the event
  // engine only learns of the frame at full reception.
  const fs_t tick = osc_.period();
  const fs_t frame_dur = phy::blocks_for_frame(frame.wire_bytes()) * tick;
  const fs_t header_dur = phy::blocks_for_frame(kMacHeaderBytes + kPreambleBytes) * tick;
  const fs_t eligible = rx_time - frame_dur + header_dur + sw_params_.pipeline_latency;
  return std::max(eligible, rx_time);
}

void Switch::handle_rx(std::size_t in_port, const Frame& frame, fs_t rx_time) {
  // Source learning.
  if (!frame.src.is_multicast()) fib_[frame.src] = in_port;

  const fs_t eligible = eligible_time(frame, rx_time);

  if (frame.dst.is_broadcast() || frame.dst.is_multicast()) {
    ++stats_.flooded;
    for (std::size_t p = 0; p < port_count(); ++p)
      if (p != in_port && port(p).link_up()) deliver(p, frame, eligible);
    return;
  }
  const std::size_t out = route(frame.dst);
  if (out == kNoRoute) {
    if (!sw_params_.flood_on_miss) {
      ++stats_.dropped_no_route;
      return;
    }
    ++stats_.flooded;
    for (std::size_t p = 0; p < port_count(); ++p)
      if (p != in_port && port(p).link_up()) deliver(p, frame, eligible);
    return;
  }
  if (out == in_port) return;  // hairpin: drop silently
  ++stats_.forwarded;
  deliver(out, frame, eligible);
}

void Switch::deliver(std::size_t out_port, const Frame& frame, fs_t eligible) {
  sim::ScopedAffinity aff(node());
  if (eligible <= sim_.now()) {
    if (!mac(out_port).enqueue(frame)) ++stats_.egress_drops;
    return;
  }
  sim_.schedule_at(
      eligible,
      [this, out_port, frame] {
        if (!mac(out_port).enqueue(frame)) ++stats_.egress_drops;
      },
      sim::EventCategory::kFrame);
}

}  // namespace dtpsim::net
