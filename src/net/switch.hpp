#pragma once

/// \file switch.hpp
/// Output-queued Ethernet switch.
///
/// Frames arriving on one port are forwarded to the egress MAC chosen by a
/// forwarding table (with source learning and flood-on-miss for unicast,
/// flood for multicast/broadcast). The egress MAC's drop-tail queue and the
/// PHY serialization produce the queueing delays that degrade PTP under
/// load (Fig. 6e/6f) — nothing about PTP is special-cased here.
///
/// Two forwarding modes:
///  * store-and-forward: a frame becomes eligible for the egress queue after
///    it is fully received, plus a fixed pipeline latency;
///  * cut-through (the paper's IBM G8264): eligible once the header has been
///    received plus the pipeline latency. The event engine learns of a frame
///    at full reception, so eligibility is clamped to that instant; for the
///    frame sizes PTP uses the difference is tens of nanoseconds and is
///    symmetric on request/response paths (see DESIGN.md deviations).

#include <cstdint>
#include <unordered_map>

#include "net/device.hpp"
#include "net/frame.hpp"

namespace dtpsim::net {

/// Switch fabric configuration.
struct SwitchParams {
  bool cut_through = true;
  fs_t pipeline_latency = from_ns(300);  ///< lookup + fabric crossing
  bool flood_on_miss = true;             ///< flood unknown unicast (tree topologies)
};

/// Forwarding statistics.
struct SwitchStats {
  std::uint64_t forwarded = 0;
  std::uint64_t flooded = 0;
  std::uint64_t dropped_no_route = 0;
  std::uint64_t egress_drops = 0;  ///< MAC queue overflow at enqueue time
};

/// An output-queued learning switch.
class Switch : public Device {
 public:
  Switch(sim::Simulator& sim, std::string name, DeviceParams dev, SwitchParams params = {});

  /// Install a static forwarding entry (used by topology builders).
  void add_route(MacAddr addr, std::size_t port_index);

  /// Lookup (test helper); returns port index or npos.
  static constexpr std::size_t kNoRoute = static_cast<std::size_t>(-1);
  std::size_t route(MacAddr addr) const;

  const SwitchParams& fabric_params() const { return sw_params_; }
  const SwitchStats& stats() const { return stats_; }

 protected:
  void on_port_added(std::size_t index) override;

 private:
  void handle_rx(std::size_t in_port, const Frame& frame, fs_t rx_time);
  void deliver(std::size_t out_port, const Frame& frame, fs_t eligible);
  fs_t eligible_time(const Frame& frame, fs_t rx_time) const;

  SwitchParams sw_params_;
  SwitchStats stats_;
  std::unordered_map<MacAddr, std::size_t, MacAddrHash> fib_;
};

}  // namespace dtpsim::net
