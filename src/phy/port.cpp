#include "phy/port.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace dtpsim::phy {

PhyPort::PhyPort(sim::Simulator& sim, Oscillator& osc, PortParams params, std::string name)
    : sim_(sim),
      osc_(osc),
      params_(params),
      name_(std::move(name)),
      fifo_(params.fifo, sim.fork_rng(std::hash<std::string>{}(name_) | 1)) {}

fs_t PhyPort::propagation_delay() const {
  if (!cable_) throw std::logic_error("PhyPort: no cable attached");
  return cable_->propagation_delay();
}

void PhyPort::link_established(Cable* cable, PhyPort* peer) {
  if (cable_) throw std::logic_error("PhyPort: already connected");
  // Cables attach from setup or chaos code (global context); everything the
  // hooks schedule belongs to this port's device.
  sim::ScopedAffinity aff(node_);
  cable_ = cable;
  peer_ = peer;
  line_free_ = std::max(line_free_, sim_.now());
  frame_allowed_ = std::max(frame_allowed_, sim_.now());
  last_link_up_at_ = sim_.now();
  if (on_link_up) on_link_up();
  // Control requests queued while the link was down get slots now.
  schedule_control_service();
}

void PhyPort::link_lost() {
  sim::ScopedAffinity aff(node_);
  cable_ = nullptr;
  peer_ = nullptr;
  if (on_link_down) on_link_down();
}

void PhyPort::request_control_slot(ControlFactory factory) {
  if (!factory) throw std::invalid_argument("PhyPort: empty control factory");
  control_queue_.push_back(std::move(factory));
  schedule_control_service();
}

void PhyPort::schedule_control_service() {
  if (control_queue_.empty() || !link_up()) return;
  sim::ScopedAffinity aff(node_);

  const fs_t slot = osc_.next_edge_at_or_after(std::max(sim_.now(), line_free_));
  if (control_service_scheduled_) {
    if (slot == control_service_at_) return;  // armed for the right slot already
    // The line was claimed by a frame (or the edge lattice moved) since we
    // armed: move the event to the new earliest slot. Firing at the stale
    // slot just to discover the line is busy would burn one event per frame
    // on a saturated link.
    sim_.cancel(control_service_event_);
  }
  control_service_scheduled_ = true;
  control_service_at_ = slot;
  control_service_event_ = sim_.schedule_at(
      slot,
      [this] {
        control_service_scheduled_ = false;
        if (control_queue_.empty() || !link_up()) return;
        // Defensive: send_frame re-aims the service event whenever it claims
        // the line, so these retries should not trigger; they keep the port
        // correct if a future caller mutates the line without re-aiming.
        if (line_free_ > sim_.now()) {
          schedule_control_service();
          return;
        }
        const fs_t tx_start = osc_.next_edge_at_or_after(sim_.now());
        if (tx_start > sim_.now()) {
          // Drifted off the edge lattice (period change); realign.
          schedule_control_service();
          return;
        }
        const std::int64_t tx_tick = osc_.tick_at(tx_start);
        ControlFactory factory = std::move(control_queue_.front());
        control_queue_.pop_front();
        const std::uint64_t bits = factory(tx_start, tx_tick);
        if (probe_control_tx) probe_control_tx(bits, tx_start);
        const fs_t tx_end = osc_.edge_of_tick(tx_tick + 1);
        line_free_ = tx_end;
        ++control_sent_;
        cable_->transmit_control(*this, bits, tx_end);
        schedule_control_service();
      },
      sim::EventCategory::kFrame);
}

bool PhyPort::control_slot_fusible(const void* tx_client) const {
  if (!link_up() || !control_queue_.empty() || control_service_scheduled_)
    return false;
  const fs_t now = sim_.now();
  if (line_free_ > now) return false;
  // Off the edge lattice (a period change landed between edges): the exact
  // engine would arm the service for a later slot, so fall back to it.
  if (osc_.next_edge_at_or_after(now) != now) return false;
  // A same-instant event ahead of the would-be service key (a global fault,
  // this node's applies, a second chain on this port) could interleave in
  // the exact engine; the fused path must yield to it.
  return sim_.bridge_tx_fusible(node_, tx_client);
}

void PhyPort::fuse_reserve_control() { sim_.bridge_virtual_schedule(node_); }

void PhyPort::fuse_fire_control(const ControlFactory& factory) {
  // Mirrors the service event body under control_slot_fusible()'s
  // preconditions: tx_start == now (on-lattice), queue empty, line free.
  const fs_t tx_start = sim_.now();
  sim_.bridge_virtual_fire(node_, sim::EventCategory::kFrame, tx_start);
  const std::int64_t tx_tick = osc_.tick_at(tx_start);
  const std::uint64_t bits = factory(tx_start, tx_tick);
  if (probe_control_tx) probe_control_tx(bits, tx_start);
  const fs_t tx_end = osc_.edge_of_tick(tx_tick + 1);
  line_free_ = tx_end;
  ++control_sent_;
  cable_->transmit_control(*this, bits, tx_end);
  // The exact body ends with schedule_control_service(); keep it for the
  // case where the factory itself queued a follow-up request.
  schedule_control_service();
}

void PhyPort::bridge_arrival_step(void* client, const sim::EventQueue::BridgeStep& s,
                                  fs_t t) {
  static_cast<PhyPort*>(client)->bridge_arrival(s.a, t, (s.d & 1) != 0);
}

void PhyPort::bridge_arrival(std::uint64_t bits56, fs_t wire_arrival, bool corrupted) {
  // Mirrors deliver_control: the CDC crossing draws its RNG at the arrival
  // instant, then visibility is armed for the crossing's edge. When nothing
  // can fire in between — and the edge is inside the active run horizon —
  // the visibility event is fused inline instead of re-entering the heap.
  const CrossingResult crossing = fifo_.cross(osc_, wire_arrival);
  ++fifo_crossings_;
  fifo_extra_cycles_ += static_cast<std::uint64_t>(crossing.random_extra);
  if (sim_.bridge_fusible_at(node_, crossing.visible_time)) {
    sim_.bridge_virtual_schedule(node_);
    sim_.bridge_virtual_fire(node_, sim::EventCategory::kFrame,
                             crossing.visible_time);
    bridge_apply(ControlRx{bits56, wire_arrival, crossing, corrupted});
    return;
  }
  sim::EventQueue::BridgeStep step;
  step.fire = &PhyPort::bridge_apply_step;
  step.client = this;
  step.a = bits56;
  step.b = wire_arrival;
  step.c = crossing.visible_tick;
  step.d = (crossing.random_extra & 1) | (corrupted ? 2 : 0);
  step.node = node_;
  step.cat = sim::EventCategory::kFrame;
  step.kind = sim::EventQueue::BridgeKind::kApply;
  sim_.bridge_schedule(node_, crossing.visible_time, step);
}

void PhyPort::bridge_apply_step(void* client, const sim::EventQueue::BridgeStep& s,
                                fs_t t) {
  const CrossingResult crossing{s.c, t, static_cast<int>(s.d & 1)};
  static_cast<PhyPort*>(client)->bridge_apply(
      ControlRx{s.a, s.b, crossing, (s.d & 2) != 0});
}

void PhyPort::bridge_apply(const ControlRx& rx) {
  if (probe_control_rx) probe_control_rx(rx);
  if (on_control) on_control(rx);
}

fs_t PhyPort::frame_clear_time() const {
  return std::max(frame_allowed_, line_free_);
}

PhyPort::TxTiming PhyPort::send_frame(std::uint32_t wire_bytes,
                                      std::shared_ptr<const void> payload) {
  if (!link_up()) throw std::logic_error("PhyPort: send_frame with link down");
  sim::ScopedAffinity aff(node_);
  const fs_t start = osc_.next_edge_at_or_after(std::max(sim_.now(), frame_clear_time()));
  const std::int64_t start_tick = osc_.tick_at(start);
  const std::int64_t blocks = blocks_for_frame(wire_bytes);
  const fs_t end = osc_.edge_of_tick(start_tick + blocks);
  line_free_ = end;
  frame_allowed_ = osc_.edge_of_tick(start_tick + blocks + params_.ipg_blocks);
  ++frames_sent_;
  cable_->transmit_frame(*this, wire_bytes, std::move(payload), end);
  // A control request queued mid-frame gets the IPG slot right after `end`.
  schedule_control_service();
  return TxTiming{start, end, frame_allowed_};
}

void PhyPort::deliver_control(std::uint64_t bits56, fs_t tx_end, bool corrupted) {
  const fs_t wire_arrival = tx_end;  // propagation already applied by cable
  const CrossingResult crossing = fifo_.cross(osc_, wire_arrival);
  ++fifo_crossings_;
  fifo_extra_cycles_ += static_cast<std::uint64_t>(crossing.random_extra);
  sim::ScopedAffinity aff(node_);
  sim_.schedule_at(
      crossing.visible_time,
      [this, bits56, wire_arrival, crossing, corrupted] {
        const ControlRx rx{bits56, wire_arrival, crossing, corrupted};
        if (probe_control_rx) probe_control_rx(rx);
        if (on_control) on_control(rx);
      },
      sim::EventCategory::kFrame);
}

void PhyPort::deliver_frame(FrameRx rx) {
  if (on_frame) on_frame(rx);
}

Cable::Cable(sim::Simulator& sim, PhyPort& a, PhyPort& b, Params params)
    : sim_(sim),
      a_(a),
      b_(b),
      params_(params),
      rng_ab_(sim.fork_rng(0xCAB1E)),
      rng_ba_(rng_ab_.fork(1)),
      dir_id_{sim.alloc_link_dir_id(), sim.alloc_link_dir_id()} {
  if (&a == &b) throw std::invalid_argument("Cable: cannot connect a port to itself");
  if (params_.propagation_delay < 0) throw std::invalid_argument("Cable: negative delay");
  sim_.register_edge(a_.node(), b_.node(), params_.propagation_delay);
  // Size the in-flight ring for the natural depth: one delivery per block
  // time of propagation, both directions, plus headroom for frames.
  std::size_t cap = 16;
  const fs_t block = std::min(a_.oscillator().nominal_period(),
                              b_.oscillator().nominal_period());
  if (block > 0) {
    const auto depth = static_cast<std::uint64_t>(
        2 * (params_.propagation_delay / block + 8));
    while (cap < depth && cap < 8192) cap <<= 1;
  }
  ring_.assign(cap, sim::EventHandle{});
  a_.link_established(this, &b_);
  b_.link_established(this, &a_);
}

void Cable::disconnect() {
  if (!connected_) return;
  connected_ = false;
  // Kill everything still on the wire: an unplug extinguishes the light, so
  // a block that has not finished arriving never reaches the far PCS. Without
  // this, delivery events scheduled before the unplug would fire into a
  // link-down port (upper layers have already torn down their expectations).
  const std::size_t mask = ring_.size() - 1;
  for (std::size_t i = 0; i < ring_count_; ++i)
    sim_.cancel(ring_[(ring_head_ + i) & mask]);
  ring_head_ = ring_count_ = 0;
  // Cross-shard deliveries went through mailboxes, and bridged arrivals are
  // POD steps; neither has a handle. Both are tagged with this cable and
  // purged directly from the queues.
  if (sim_.parallel() || sim_.bridged()) sim_.purge_deliveries(this);
  a_.link_lost();
  b_.link_lost();
}

void Cable::track(sim::EventHandle h) {
  if (!h.valid()) return;  // mailbox-routed: cancelled by owner purge
  if (ring_count_ == ring_.size()) {
    // The ring wrapped: the head holds the oldest deliveries, which under
    // steady traffic have long since fired. Drop those before growing.
    const std::size_t mask = ring_.size() - 1;
    while (ring_count_ > 0 && !sim_.pending(ring_[ring_head_ & mask])) {
      ring_head_ = (ring_head_ + 1) & mask;
      --ring_count_;
    }
    if (ring_count_ == ring_.size()) grow_ring();
  }
  ring_[(ring_head_ + ring_count_) & (ring_.size() - 1)] = h;
  ++ring_count_;
}

void Cable::grow_ring() {
  std::vector<sim::EventHandle> bigger(ring_.size() * 2);
  const std::size_t mask = ring_.size() - 1;
  for (std::size_t i = 0; i < ring_count_; ++i)
    bigger[i] = ring_[(ring_head_ + i) & mask];
  ring_ = std::move(bigger);
  ring_head_ = 0;
}

PhyPort& Cable::other_side(const PhyPort& from) { return &from == &a_ ? b_ : a_; }

int Cable::check_dir(int dir) {
  if (dir != 0 && dir != 1)
    throw std::invalid_argument("Cable: direction must be 0 (a->b) or 1 (b->a)");
  return dir;
}

void Cable::set_extra_delay(int dir, fs_t extra) {
  if (extra < 0) throw std::invalid_argument("Cable: negative extra delay");
  extra_delay_[check_dir(dir)] = extra;
}

void Cable::set_tx_stall(int dir, double prob, fs_t stall) {
  if (prob < 0.0 || prob > 1.0 || stall < 0)
    throw std::invalid_argument("Cable: tx stall needs prob in [0,1], stall >= 0");
  stall_prob_[check_dir(dir)] = prob;
  stall_[dir] = stall;
}

void Cable::set_silent_corrupt(int dir, double prob) {
  if (prob < 0.0 || prob > 1.0)
    throw std::invalid_argument("Cable: silent-corrupt prob must be in [0,1]");
  silent_corrupt_[check_dir(dir)] = prob;
}

void Cable::transmit_control(PhyPort& from, std::uint64_t bits56, fs_t tx_end) {
  const int dir = direction_of(from);
  Rng& rng = dir == 0 ? rng_ab_ : rng_ba_;
  if (control_drop_ > 0.0 && rng.bernoulli(control_drop_)) {
    // Swallowed whole (loss-of-block-lock window): the receiver never sees
    // a block at all, as opposed to the BER path's corrupted-but-present.
    ++dropped_control_[dir];
    return;
  }
  bool corrupted = false;
  if (params_.ber > 0.0) {
    // One 66-bit block of exposure.
    const double p_block = 1.0 - std::pow(1.0 - params_.ber, 66.0);
    if (rng.bernoulli(p_block)) {
      corrupted = true;
      ++corrupted_control_[dir];
      bits56 ^= (1ULL << rng.uniform(56));  // flip one payload bit
    }
  }
  if (silent_corrupt_[dir] > 0.0 && rng.bernoulli(silent_corrupt_[dir])) {
    // Gray fault: flip one low counter bit (payload bits sit at [55:3], so
    // bits 5..6 are counter bits 2..3 — a +-4/+-8 tick lie). Deliberately
    // does NOT set `corrupted`: the damage survives framing, so the DTP
    // sublayer sees a well-formed message carrying a wrong value.
    bits56 ^= (1ULL << (5 + rng.uniform(2)));
  }
  PhyPort& to = other_side(from);
  fs_t arrival = tx_end + params_.propagation_delay + extra_delay_[dir];
  if (stall_prob_[dir] > 0.0 && rng.bernoulli(stall_prob_[dir]))
    arrival += stall_[dir];
  // The lane is FIFO: a stalled block holds its successors behind it, so a
  // later block never overtakes an earlier one. No-op when the seams are off
  // (serialization already makes per-direction arrivals monotone).
  if (arrival < last_control_arrival_[dir]) arrival = last_control_arrival_[dir];
  last_control_arrival_[dir] = arrival;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(dir_id_[dir]) << 32) | tx_seq_[dir]++;
  if (sim_.bridged()) {
    // POD arrival step on the destination queue at the same (time, link key)
    // the exact delivery event would occupy. Cross-shard sends from a worker
    // still take the exact mailbox path below.
    sim::EventQueue::BridgeStep step;
    step.fire = &PhyPort::bridge_arrival_step;
    step.client = &to;
    step.owner = this;  // disconnect() purges in-flight deliveries by owner
    step.a = bits56;
    step.d = corrupted ? 1 : 0;
    step.node = to.node();
    step.cat = sim::EventCategory::kFrame;
    step.kind = sim::EventQueue::BridgeKind::kArrival;
    if (sim_.bridge_deliver_link(to.node(), arrival, key, step)) return;
  }
  track(sim_.deliver_link(
      from.node(), to.node(), arrival,
      [&to, bits56, arrival, corrupted] { to.deliver_control(bits56, arrival, corrupted); },
      sim::EventCategory::kFrame, this, key));
}

void Cable::transmit_frame(PhyPort& from, std::uint32_t wire_bytes,
                           std::shared_ptr<const void> payload, fs_t tx_end) {
  const int dir = direction_of(from);
  bool fcs_ok = true;
  if (params_.ber > 0.0) {
    Rng& rng = dir == 0 ? rng_ab_ : rng_ba_;
    const double bits = static_cast<double>(wire_bytes) * 8.0;
    const double p_frame = 1.0 - std::pow(1.0 - params_.ber, bits);
    if (rng.bernoulli(p_frame)) {
      fcs_ok = false;
      ++corrupted_frames_[dir];
    }
  }
  PhyPort& to = other_side(from);
  const fs_t arrival = tx_end + params_.propagation_delay;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(dir_id_[dir]) << 32) | tx_seq_[dir]++;
  track(sim_.deliver_link(
      from.node(), to.node(), arrival,
      [&to, payload = std::move(payload), wire_bytes, fcs_ok, arrival] {
        to.deliver_frame(FrameRx{payload, wire_bytes, fcs_ok, arrival});
      },
      sim::EventCategory::kFrame, this, key));
}

}  // namespace dtpsim::phy
