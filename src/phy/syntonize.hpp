#pragma once

/// \file syntonize.hpp
/// Synchronous-Ethernet-style frequency syntonization (Section 8).
///
/// SyncE drives a device's transmit clock from the clock *recovered* on a
/// designated upstream port, so every device in a syntonization tree runs
/// at (almost exactly) the master's frequency; only a small residual error
/// remains from the cleanup PLL. The paper's closing discussion expects
/// DTP-over-SyncE to approach sub-nanosecond precision because the counters
/// stop drifting between beacons and the sync-FIFO variance can be
/// engineered away — `bench_ext_synce` measures exactly that.
///
/// Modeled as a periodic PLL update: the slave's oscillator period is set
/// to the upstream device's current period plus a small random residual.

#include "common/rng.hpp"
#include "phy/oscillator.hpp"
#include "sim/simulator.hpp"

namespace dtpsim::phy {

/// PLL model parameters.
struct SyntonizeParams {
  fs_t update_interval = from_us(100);  ///< PLL bandwidth proxy
  double residual_ppb = 10.0;           ///< cleanup-PLL jitter (1-sigma, ppb)
};

/// Locks a slave oscillator's frequency to an upstream (master-side)
/// oscillator. Chains compose: syntonize B to A and C to B, and C follows A
/// with accumulated residuals, like a real SyncE clock chain.
class Syntonizer {
 public:
  /// \param slave     oscillator to discipline (must outlive)
  /// \param upstream  oscillator whose frequency is recovered (must outlive)
  Syntonizer(sim::Simulator& sim, Oscillator& slave, const Oscillator& upstream,
             SyntonizeParams params, Rng rng);

  void start() { proc_.start(); }
  void stop() { proc_.stop(); }

  /// Residual frequency error applied at the last update, in ppb.
  double last_residual_ppb() const { return last_residual_ppb_; }

 private:
  void update();

  sim::Simulator& sim_;
  Oscillator& slave_;
  const Oscillator& upstream_;
  SyntonizeParams params_;
  Rng rng_;
  double last_residual_ppb_ = 0.0;
  sim::PeriodicProcess proc_;
};

}  // namespace dtpsim::phy
