#include "phy/pcs.hpp"

#include <stdexcept>

namespace dtpsim::phy {

std::vector<Block> encode_frame(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 7) throw std::invalid_argument("encode_frame: frame shorter than 7 bytes");
  std::vector<Block> out;
  out.reserve(bytes.size() / 8 + 2);

  out.push_back(make_start_block(bytes.data()));
  std::size_t pos = 7;
  while (bytes.size() - pos >= 8) {
    out.push_back(make_data_block(bytes.data() + pos));
    pos += 8;
  }
  out.push_back(make_terminate_block(bytes.data() + pos, static_cast<int>(bytes.size() - pos)));
  return out;
}

void FrameDecoder::drop_partial() {
  if (!in_frame_) return;
  in_frame_ = false;
  current_.clear();
  ++errors_.frames_dropped;
}

bool FrameDecoder::feed(const Block& b) {
  if (b.sync != kSyncData && b.sync != kSyncControl) {
    // A corrupted sync header means block framing itself is suspect: drop
    // any partial frame and hunt for the next clean /S/.
    ++errors_.bad_sync;
    drop_partial();
    return false;
  }
  if (b.is_idle_frame()) {
    if (in_frame_) {
      // The frame's /T/ was lost; the idle itself is a clean resync point.
      ++errors_.idle_in_frame;
      drop_partial();
    }
    return false;
  }
  if (b.is_start()) {
    if (in_frame_) {
      ++errors_.start_in_frame;
      drop_partial();
      // Fall through: this /S/ legitimately starts the next frame.
    }
    in_frame_ = true;
    current_.clear();
    for (int i = 0; i < 7; ++i) current_.push_back(b.byte(i + 1));
    return false;
  }
  if (b.is_data()) {
    if (!in_frame_) {
      ++errors_.data_outside_frame;
      return false;
    }
    for (int i = 0; i < 8; ++i) current_.push_back(b.byte(i));
    return false;
  }
  if (b.is_terminate()) {
    if (!in_frame_) {
      ++errors_.term_outside_frame;
      return false;
    }
    const int n = b.terminate_data_bytes();
    for (int i = 0; i < n; ++i) current_.push_back(b.byte(i + 1));
    in_frame_ = false;
    completed_ = std::move(current_);
    current_.clear();
    has_completed_ = true;
    return true;
  }
  // Unrecognized control block type (ordered sets, garbage type bytes): a
  // mid-frame one corrupts the frame; between frames it is just counted.
  ++errors_.bad_block_type;
  drop_partial();
  return false;
}

std::vector<std::uint8_t> FrameDecoder::take_frame() {
  if (!has_completed_) throw std::logic_error("FrameDecoder: no completed frame");
  has_completed_ = false;
  return std::move(completed_);
}

}  // namespace dtpsim::phy
