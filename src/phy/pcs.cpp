#include "phy/pcs.hpp"

#include <stdexcept>

namespace dtpsim::phy {

std::vector<Block> encode_frame(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 7) throw std::invalid_argument("encode_frame: frame shorter than 7 bytes");
  std::vector<Block> out;
  out.reserve(bytes.size() / 8 + 2);

  out.push_back(make_start_block(bytes.data()));
  std::size_t pos = 7;
  while (bytes.size() - pos >= 8) {
    out.push_back(make_data_block(bytes.data() + pos));
    pos += 8;
  }
  out.push_back(make_terminate_block(bytes.data() + pos, static_cast<int>(bytes.size() - pos)));
  return out;
}

bool FrameDecoder::feed(const Block& b) {
  if (b.is_idle_frame()) {
    if (in_frame_) throw DecodeError("idle block inside a frame");
    return false;
  }
  if (b.is_start()) {
    if (in_frame_) throw DecodeError("start block inside a frame");
    in_frame_ = true;
    current_.clear();
    for (int i = 0; i < 7; ++i) current_.push_back(b.byte(i + 1));
    return false;
  }
  if (b.is_data()) {
    if (!in_frame_) throw DecodeError("data block outside a frame");
    for (int i = 0; i < 8; ++i) current_.push_back(b.byte(i));
    return false;
  }
  if (b.is_terminate()) {
    if (!in_frame_) throw DecodeError("terminate block outside a frame");
    const int n = b.terminate_data_bytes();
    for (int i = 0; i < n; ++i) current_.push_back(b.byte(i + 1));
    in_frame_ = false;
    completed_ = std::move(current_);
    current_.clear();
    has_completed_ = true;
    return true;
  }
  throw DecodeError("unrecognized block type");
}

std::vector<std::uint8_t> FrameDecoder::take_frame() {
  if (!has_completed_) throw std::logic_error("FrameDecoder: no completed frame");
  has_completed_ = false;
  return std::move(completed_);
}

}  // namespace dtpsim::phy
