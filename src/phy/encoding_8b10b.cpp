#include "phy/encoding_8b10b.hpp"

#include <array>
#include <stdexcept>
#include <unordered_map>

namespace dtpsim::phy {

namespace {

// --- 5b/6b sub-block (abcdei, bit 5 = 'a', first on the wire) -------------
// Primary column (current running disparity negative), per clause 36 /
// Widmer-Franaszek. Alternate = bitwise complement where marked.
struct Code6 {
  std::uint8_t primary;  // 6 bits
  bool has_alternate;    // alternate = ~primary
};

constexpr std::array<Code6, 32> kData6 = {{
    {0b100111, true},   // D0
    {0b011101, true},   // D1
    {0b101101, true},   // D2
    {0b110001, false},  // D3
    {0b110101, true},   // D4
    {0b101001, false},  // D5
    {0b011001, false},  // D6
    {0b111000, true},   // D7 (both neutral; alternate avoids long runs)
    {0b111001, true},   // D8
    {0b100101, false},  // D9
    {0b010101, false},  // D10
    {0b110100, false},  // D11
    {0b001101, false},  // D12
    {0b101100, false},  // D13
    {0b011100, false},  // D14
    {0b010111, true},   // D15
    {0b011011, true},   // D16
    {0b100011, false},  // D17
    {0b010011, false},  // D18
    {0b110010, false},  // D19
    {0b001011, false},  // D20
    {0b101010, false},  // D21
    {0b011010, false},  // D22
    {0b111010, true},   // D23
    {0b110011, true},   // D24
    {0b100110, false},  // D25
    {0b010110, false},  // D26
    {0b110110, true},   // D27
    {0b001110, false},  // D28
    {0b101110, true},   // D29
    {0b011110, true},   // D30
    {0b101011, true},   // D31
}};

constexpr Code6 kK28_6b{0b001111, true};

// --- 3b/4b sub-block (fghj, bit 3 = 'f') -----------------------------------
constexpr std::array<Code6, 8> kData4 = {{
    {0b1011, true},   // x.0
    {0b1001, false},  // x.1
    {0b0101, false},  // x.2
    {0b1100, true},   // x.3 (both neutral; alternate by RD)
    {0b1101, true},   // x.4
    {0b1010, false},  // x.5
    {0b0110, false},  // x.6
    {0b1110, true},   // x.7 primary (D.x.7)
}};
constexpr Code6 kAlt7_4b{0b0111, true};  // A.x.7

// K-code 3b/4b: .1/.2/.5/.6 use the complements of the data forms so the
// comma alternates properly.
constexpr std::array<Code6, 8> kCtrl4 = {{
    {0b1011, true},   // K.x.0
    {0b0110, true},   // K.x.1
    {0b1010, true},   // K.x.2
    {0b1100, true},   // K.x.3
    {0b1101, true},   // K.x.4
    {0b0101, true},   // K.x.5
    {0b1001, true},   // K.x.6
    {0b0111, true},   // K.x.7
}};

int ones(std::uint32_t v) { return __builtin_popcount(v); }

/// Disparity contribution of an n-bit sub-block: ones - zeros.
int block_disparity(std::uint32_t bits, int n) { return 2 * ones(bits) - n; }

/// Choose the column for the current RD and update RD.
std::uint32_t pick(const Code6& code, int n, Disparity& rd) {
  std::uint32_t chosen = code.primary;
  if (code.has_alternate && rd == Disparity::kPositive)
    chosen = ~code.primary & ((1u << n) - 1);
  const int d = block_disparity(chosen, n);
  if (d != 0)
    rd = (d > 0) ? Disparity::kPositive : Disparity::kNegative;
  return chosen;
}

bool is_legal_kcode(std::uint8_t byte) {
  switch (static_cast<KCode>(byte)) {
    case KCode::kK28_0:
    case KCode::kK28_1:
    case KCode::kK28_2:
    case KCode::kK28_3:
    case KCode::kK28_4:
    case KCode::kK28_5:
    case KCode::kK28_6:
    case KCode::kK28_7:
    case KCode::kK23_7:
    case KCode::kK27_7:
    case KCode::kK29_7:
    case KCode::kK30_7:
      return true;
  }
  return false;
}

}  // namespace

Symbol10 Encoder8b10b::encode(std::uint8_t byte, bool control) {
  const std::uint8_t low5 = byte & 0x1F;       // EDCBA
  const std::uint8_t high3 = (byte >> 5) & 7;  // HGF

  Code6 six;
  if (control) {
    if (!is_legal_kcode(byte)) throw std::invalid_argument("8b10b: illegal K code");
    if (low5 == 28) {
      six = kK28_6b;
    } else {
      six = kData6[low5];  // K23/K27/K29/K30 reuse the data 6b encodings
    }
  } else {
    six = kData6[low5];
  }
  const std::uint32_t abcdei = pick(six, 6, rd_);

  Code6 four;
  if (control) {
    four = kCtrl4[high3];
  } else if (high3 == 7) {
    // D.x.A7 replaces D.x.7 to break up runs of five identical bits.
    const bool use_a7 =
        (rd_ == Disparity::kNegative && (low5 == 17 || low5 == 18 || low5 == 20)) ||
        (rd_ == Disparity::kPositive && (low5 == 11 || low5 == 13 || low5 == 14));
    four = use_a7 ? kAlt7_4b : kData4[7];
  } else {
    four = kData4[high3];
  }
  const std::uint32_t fghj = pick(four, 4, rd_);

  return static_cast<Symbol10>((abcdei << 4) | fghj);
}

Symbol10 Encoder8b10b::encode_data(std::uint8_t byte) { return encode(byte, false); }

Symbol10 Encoder8b10b::encode_control(KCode k) {
  return encode(static_cast<std::uint8_t>(k), true);
}

namespace {

/// Reverse map built once by exhaustively encoding everything in both
/// starting disparities.
struct ReverseMap {
  std::unordered_map<Symbol10, Decoded8b10b> map;

  ReverseMap() {
    auto add = [&](Symbol10 s, std::uint8_t byte, bool control) {
      auto [it, inserted] = map.emplace(s, Decoded8b10b{byte, control});
      if (!inserted && (it->second.byte != byte || it->second.is_control != control))
        throw std::logic_error("8b10b: symbol collision in code tables");
    };
    for (auto rd : {Disparity::kNegative, Disparity::kPositive}) {
      for (int b = 0; b < 256; ++b) {
        Encoder8b10b enc(rd);
        add(enc.encode_data(static_cast<std::uint8_t>(b)), static_cast<std::uint8_t>(b),
            false);
      }
      for (KCode k : {KCode::kK28_0, KCode::kK28_1, KCode::kK28_2, KCode::kK28_3,
                      KCode::kK28_4, KCode::kK28_5, KCode::kK28_6, KCode::kK28_7,
                      KCode::kK23_7, KCode::kK27_7, KCode::kK29_7, KCode::kK30_7}) {
        Encoder8b10b enc(rd);
        add(enc.encode_control(k), static_cast<std::uint8_t>(k), true);
      }
    }
  }
};

const ReverseMap& reverse_map() {
  static const ReverseMap instance;
  return instance;
}

}  // namespace

std::optional<Decoded8b10b> Decoder8b10b::decode(Symbol10 symbol) {
  symbol &= 0x3FF;
  const auto& map = reverse_map().map;
  const auto it = map.find(symbol);
  if (it == map.end()) return std::nullopt;  // code violation

  const int d = block_disparity(symbol, 10);
  if (d != 0 && d != 2 && d != -2) return std::nullopt;
  if (d != 0) {
    // A disparate symbol must flip the running disparity; receiving one
    // that pushes RD out of {-1,+1} is a disparity error.
    const auto next = (d > 0) ? Disparity::kPositive : Disparity::kNegative;
    if (next == rd_) return std::nullopt;
    rd_ = next;
  }
  return it->second;
}

bool is_comma(Symbol10 symbol) {
  // Comma = 0011111 or 1100000 in the first seven wire bits (a..g).
  const std::uint32_t first7 = (symbol >> 3) & 0x7F;
  return first7 == 0b0011111 || first7 == 0b1100000;
}

}  // namespace dtpsim::phy
