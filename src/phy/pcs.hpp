#pragma once

/// \file pcs.hpp
/// 64b/66b Physical Coding Sublayer: frame <-> block encode/decode.
///
/// The encoder maps a byte stream (one Ethernet frame, preamble included)
/// onto /S/ + data + /T/ blocks exactly as clause 49 lays frames onto the
/// 66-bit lattice; the decoder reverses it. Idle blocks fill the gaps
/// between frames; DTP rides in those (see dtp/messages.hpp). Round-trip is
/// exact and tested property-style over random frame sizes.

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "phy/block.hpp"

namespace dtpsim::phy {

/// Encode one frame (wire bytes including preamble/SFD) into PCS blocks:
/// one /S/ block, interior data blocks, one /T/ block.
/// Requires at least 7 bytes (preamble alone is 8).
std::vector<Block> encode_frame(const std::vector<std::uint8_t>& bytes);

/// Decoder state machine for a block stream. Feed blocks in order; complete
/// frames are appended to `frames`. Idle blocks between frames are ignored
/// (their DTP content is handled a layer below). Malformed sequences (data
/// before /S/, missing /T/) raise `DecodeError`.
class FrameDecoder {
 public:
  struct DecodeError : std::runtime_error {
    using std::runtime_error::runtime_error;
  };

  /// Feed one block. Returns true when this block completed a frame; the
  /// frame is then available via `take_frame()`.
  bool feed(const Block& b);

  /// Retrieve the most recently completed frame (moves it out).
  std::vector<std::uint8_t> take_frame();

  /// True while mid-frame (between /S/ and /T/).
  bool in_frame() const { return in_frame_; }

 private:
  bool in_frame_ = false;
  std::vector<std::uint8_t> current_;
  std::vector<std::uint8_t> completed_;
  bool has_completed_ = false;
};

}  // namespace dtpsim::phy
