#pragma once

/// \file pcs.hpp
/// 64b/66b Physical Coding Sublayer: frame <-> block encode/decode.
///
/// The encoder maps a byte stream (one Ethernet frame, preamble included)
/// onto /S/ + data + /T/ blocks exactly as clause 49 lays frames onto the
/// 66-bit lattice; the decoder reverses it. Idle blocks fill the gaps
/// between frames; DTP rides in those (see dtp/messages.hpp). Round-trip is
/// exact and tested property-style over random frame sizes.

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "phy/block.hpp"

namespace dtpsim::phy {

/// Encode one frame (wire bytes including preamble/SFD) into PCS blocks:
/// one /S/ block, interior data blocks, one /T/ block.
/// Requires at least 7 bytes (preamble alone is 8).
std::vector<Block> encode_frame(const std::vector<std::uint8_t>& bytes);

/// Decoder state machine for a block stream. Feed blocks in order; complete
/// frames are appended to `frames`. Idle blocks between frames are ignored
/// (their DTP content is handled a layer below).
///
/// Hardened against adversarial input (clause 49.2.13.2.2 behaviour): a
/// malformed sequence — invalid sync header, /S/ or /E/ mid-frame, data or
/// /T/ outside a frame, an unrecognized control block type — never throws
/// and never wedges the decoder. The error is counted, any partial frame is
/// dropped, and the state machine resynchronizes on the next clean boundary
/// (an /S/ after idles; a mid-frame /S/ itself starts the next frame).
class FrameDecoder {
 public:
  /// Legacy alias: feed() no longer throws, but callers that still name the
  /// type (catch blocks written against the old API) keep compiling.
  struct DecodeError : std::runtime_error {
    using std::runtime_error::runtime_error;
  };

  /// Per-kind error tallies; `total()` is the sentinel/fuzzer headline.
  struct ErrorStats {
    std::uint64_t bad_sync = 0;           ///< sync header not 0b01/0b10
    std::uint64_t idle_in_frame = 0;      ///< /E/ before the frame's /T/
    std::uint64_t start_in_frame = 0;     ///< /S/ before the frame's /T/
    std::uint64_t data_outside_frame = 0; ///< data block while hunting /S/
    std::uint64_t term_outside_frame = 0; ///< /T/ while hunting /S/
    std::uint64_t bad_block_type = 0;     ///< unrecognized control type byte
    std::uint64_t frames_dropped = 0;     ///< partial frames discarded

    std::uint64_t total() const {
      return bad_sync + idle_in_frame + start_in_frame + data_outside_frame +
             term_outside_frame + bad_block_type;
    }
  };

  /// Feed one block. Returns true when this block completed a frame; the
  /// frame is then available via `take_frame()`. Never throws on malformed
  /// input — see the class comment.
  bool feed(const Block& b);

  /// Retrieve the most recently completed frame (moves it out).
  std::vector<std::uint8_t> take_frame();

  /// True while mid-frame (between /S/ and /T/).
  bool in_frame() const { return in_frame_; }

  const ErrorStats& errors() const { return errors_; }

 private:
  /// Abandon any partial frame (malformed sequence observed mid-frame).
  void drop_partial();

  bool in_frame_ = false;
  std::vector<std::uint8_t> current_;
  std::vector<std::uint8_t> completed_;
  bool has_completed_ = false;
  ErrorStats errors_;
};

}  // namespace dtpsim::phy
