#include "phy/sync_fifo.hpp"

namespace dtpsim::phy {

CrossingResult SyncFifo::cross(const Oscillator& local, fs_t arrival) {
  // Phase quantization: wait for the next local edge strictly after arrival
  // (a bit landing exactly on an edge cannot be captured by that edge).
  const fs_t first_edge = local.next_edge_after(arrival);
  std::int64_t tick = local.tick_at(first_edge);

  // The capture flop only behaves nondeterministically when the data
  // transition lands within the metastability window of the edge; elsewhere
  // the crossing is a pure function of phase.
  const fs_t window =
      static_cast<fs_t>(params_.metastability_window * static_cast<double>(local.period()));
  const bool near_edge = (first_edge - arrival) <= window;
  const int extra = (near_edge && rng_.bernoulli(params_.extra_cycle_prob)) ? 1 : 0;
  tick += extra + params_.pipeline_cycles;

  return CrossingResult{tick, local.edge_of_tick(tick), extra};
}

}  // namespace dtpsim::phy
