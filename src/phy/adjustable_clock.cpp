#include "phy/adjustable_clock.hpp"

#include <algorithm>
#include <cmath>

namespace dtpsim::phy {

namespace {
constexpr double kMaxTrimPpb = 1e6;  // NIC PHCs accept very large trims (ptp4l: 900 ppm)
}

AdjustableClock::AdjustableClock(const Oscillator& osc, fs_t resolution, bool ideal)
    : osc_(osc),
      resolution_(resolution),
      ideal_(ideal),
      ns_per_tick_(to_ns_f(osc.nominal_period())) {}

double AdjustableClock::time_ns_at(fs_t t) const {
  if (ideal_) return to_ns_f(t);
  const std::int64_t k = osc_.tick_at(t);
  // Sub-tick interpolation keeps reads monotone and smooth; the counter
  // itself only changes on edges, which `timestamp_ns` reflects via its
  // quantization.
  const double frac = static_cast<double>(t - osc_.edge_of_tick(k)) /
                      static_cast<double>(osc_.period());
  return value_ns_ + (static_cast<double>(k - anchor_tick_) + frac) * ns_per_tick_;
}

double AdjustableClock::timestamp_ns(fs_t t) const {
  const double res_ns = to_ns_f(resolution_);
  return std::floor(time_ns_at(t) / res_ns) * res_ns;
}

void AdjustableClock::re_anchor(fs_t t) {
  const std::int64_t k = osc_.tick_at(t);
  value_ns_ += static_cast<double>(k - anchor_tick_) * ns_per_tick_;
  anchor_tick_ = k;
}

void AdjustableClock::adj_freq(fs_t t, double ppb) {
  if (ideal_) return;
  ppb = std::clamp(ppb, -kMaxTrimPpb, kMaxTrimPpb);
  re_anchor(t);
  freq_ppb_ = ppb;
  ns_per_tick_ = to_ns_f(osc_.nominal_period()) * (1.0 + ppb * 1e-9);
}

void AdjustableClock::step(fs_t t, double offset_ns) {
  if (ideal_) return;
  re_anchor(t);
  value_ns_ += offset_ns;
}

}  // namespace dtpsim::phy
