#include "phy/scrambler.hpp"

namespace dtpsim::phy {

namespace {
constexpr std::uint64_t kStateMask = (1ULL << 58) - 1;
}

Scrambler::Scrambler(std::uint64_t seed) : state_(seed & kStateMask) {}

std::uint64_t Scrambler::scramble(std::uint64_t payload) {
  std::uint64_t out = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t in_bit = (payload >> i) & 1;
    // s_out = in ^ s38 ^ s57 (taps at x^39 and x^58 of the shift register).
    const std::uint64_t s39 = (state_ >> 38) & 1;
    const std::uint64_t s58 = (state_ >> 57) & 1;
    const std::uint64_t out_bit = in_bit ^ s39 ^ s58;
    out |= out_bit << i;
    state_ = ((state_ << 1) | out_bit) & kStateMask;
  }
  return out;
}

Block Scrambler::scramble_block(Block b) {
  b.payload = scramble(b.payload);
  return b;
}

Descrambler::Descrambler(std::uint64_t seed) : state_(seed & kStateMask) {}

std::uint64_t Descrambler::descramble(std::uint64_t payload) {
  std::uint64_t out = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t in_bit = (payload >> i) & 1;
    const std::uint64_t s39 = (state_ >> 38) & 1;
    const std::uint64_t s58 = (state_ >> 57) & 1;
    const std::uint64_t out_bit = in_bit ^ s39 ^ s58;
    out |= out_bit << i;
    // Self-synchronizing: the shift register holds *received* (scrambled)
    // bits, so any seed converges after 58 bits.
    state_ = ((state_ << 1) | in_bit) & kStateMask;
  }
  return out;
}

Block Descrambler::descramble_block(Block b) {
  b.payload = descramble(b.payload);
  return b;
}

}  // namespace dtpsim::phy
