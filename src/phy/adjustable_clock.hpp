#pragma once

/// \file adjustable_clock.hpp
/// A steerable clock driven by an oscillator.
///
/// Both PTP hardware clocks (PHCs) and kernel software clocks share this
/// structure: a counter advancing with the local oscillator whose per-tick
/// increment can be trimmed (frequency adjustment, ppb) and whose value can
/// be stepped. Readings are in nanoseconds; hardware timestamps are
/// quantized to a configurable resolution. The clock inherits the
/// oscillator's unknown, wandering frequency error — cancelling it is the
/// job of whatever servo steers the clock.

#include <cstdint>

#include "common/time_units.hpp"
#include "phy/oscillator.hpp"

namespace dtpsim::phy {

/// Adjustable clock counting (scaled) oscillator ticks, reporting ns.
class AdjustableClock {
 public:
  /// \param osc         driving oscillator (must outlive the clock)
  /// \param resolution  timestamp granularity
  /// \param ideal       if true the clock reports true time exactly — used
  ///                    for GPS-disciplined references
  explicit AdjustableClock(const Oscillator& osc, fs_t resolution = from_ns(8),
                           bool ideal = false);

  /// Continuous reading at simulated time `t`, in nanoseconds.
  double time_ns_at(fs_t t) const;

  /// Timestamp: the reading quantized down to the resolution.
  double timestamp_ns(fs_t t) const;

  /// Set the frequency trim (ppb, clamped to +-1e6 ppb)
  /// as of time `t`.
  void adj_freq(fs_t t, double ppb);
  double freq_ppb() const { return freq_ppb_; }

  /// Step the clock by `offset_ns` as of time `t`.
  void step(fs_t t, double offset_ns);

  fs_t resolution() const { return resolution_; }
  bool ideal() const { return ideal_; }

 private:
  void re_anchor(fs_t t);

  const Oscillator& osc_;
  fs_t resolution_;
  bool ideal_;
  std::int64_t anchor_tick_ = 0;
  double value_ns_ = 0.0;  ///< clock value at the anchor tick's edge
  double ns_per_tick_;     ///< current increment per oscillator tick
  double freq_ppb_ = 0.0;
};

}  // namespace dtpsim::phy
