#include "phy/oscillator.hpp"

#include <cmath>
#include <stdexcept>

namespace dtpsim::phy {

fs_t period_from_ppm(fs_t nominal_period, double ppm) {
  // f = f_nom * (1 + ppm/1e6)  =>  P = P_nom / (1 + ppm/1e6).
  const double p = static_cast<double>(nominal_period) / (1.0 + ppm * 1e-6);
  const auto rounded = static_cast<fs_t>(std::llround(p));
  if (rounded <= 0) throw std::invalid_argument("period_from_ppm: non-positive period");
  return rounded;
}

Oscillator::Oscillator(fs_t nominal_period, double ppm, fs_t phase)
    : nominal_period_(nominal_period),
      period_(period_from_ppm(nominal_period, ppm)),
      anchor_time_(phase),
      anchor_tick_(0) {
  if (nominal_period <= 0) throw std::invalid_argument("Oscillator: non-positive period");
}

double Oscillator::ppm() const {
  return (static_cast<double>(nominal_period_) / static_cast<double>(period_) - 1.0) * 1e6;
}

void Oscillator::check_time(fs_t t) const {
  if (t < anchor_time_) throw std::logic_error("Oscillator: query before anchor time");
}

std::int64_t Oscillator::tick_at(fs_t t) const {
  check_time(t);
  return anchor_tick_ + (t - anchor_time_) / period_;
}

fs_t Oscillator::edge_of_tick(std::int64_t k) const {
  if (k < anchor_tick_) throw std::logic_error("Oscillator: tick before anchor");
  return anchor_time_ + (k - anchor_tick_) * period_;
}

fs_t Oscillator::next_edge_at_or_after(fs_t t) const {
  check_time(t);
  const fs_t since = t - anchor_time_;
  const fs_t k = (since + period_ - 1) / period_;  // ceil division
  return anchor_time_ + k * period_;
}

fs_t Oscillator::next_edge_after(fs_t t) const {
  const fs_t e = next_edge_at_or_after(t);
  return e > t ? e : e + period_;
}

void Oscillator::set_period_at(fs_t t, fs_t new_period) {
  if (new_period <= 0) throw std::invalid_argument("Oscillator: non-positive period");
  check_time(t);
  // Re-anchor on the last edge at or before t so past edges are preserved.
  const std::int64_t k = tick_at(t);
  anchor_time_ = edge_of_tick(k);
  anchor_tick_ = k;
  period_ = new_period;
}

void Oscillator::set_ppm_at(fs_t t, double ppm) {
  set_period_at(t, period_from_ppm(nominal_period_, ppm));
}

}  // namespace dtpsim::phy
