#include "phy/oscillator.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace dtpsim::phy {

namespace {

/// The exact double Oscillator::ppm() reports for an integer period — the
/// round-trip below must compare against this, not the analytic inverse.
double ppm_of_period(fs_t nominal_period, fs_t period) {
  return (static_cast<double>(nominal_period) / static_cast<double>(period) - 1.0) * 1e6;
}

/// Widened result checked back into the femtosecond range. Bridged
/// fast-forward legitimately asks for edges near the int64 horizon
/// (~2.5 simulated hours); wrapping there would silently reorder events.
fs_t narrow_or_throw(__int128 t, const char* what) {
  if (t > std::numeric_limits<fs_t>::max() || t < std::numeric_limits<fs_t>::min())
    throw std::overflow_error(what);
  return static_cast<fs_t>(t);
}

}  // namespace

fs_t period_from_ppm(fs_t nominal_period, double ppm) {
  // f = f_nom * (1 + ppm/1e6)  =>  P = P_nom / (1 + ppm/1e6). The division
  // and llround land within one unit of the best integer period; picking the
  // candidate whose ppm() is closest to the request makes
  // set_ppm_at(t, osc.ppm()) an exact no-op on the integer period (the true
  // period is always among the candidates and has distance zero).
  const double p = static_cast<double>(nominal_period) / (1.0 + ppm * 1e-6);
  const auto rounded = static_cast<fs_t>(std::llround(p));
  fs_t best = 0;
  double best_err = std::numeric_limits<double>::infinity();
  for (fs_t cand : {rounded - 1, rounded, rounded + 1}) {
    if (cand <= 0) continue;
    const double err = std::abs(ppm_of_period(nominal_period, cand) - ppm);
    if (err < best_err) {
      best_err = err;
      best = cand;
    }
  }
  if (best <= 0) throw std::invalid_argument("period_from_ppm: non-positive period");
  return best;
}

Oscillator::Oscillator(fs_t nominal_period, double ppm, fs_t phase)
    : nominal_period_(nominal_period),
      period_(period_from_ppm(nominal_period, ppm)),
      anchor_time_(phase),
      anchor_tick_(0) {
  if (nominal_period <= 0) throw std::invalid_argument("Oscillator: non-positive period");
}

double Oscillator::ppm() const {
  return (static_cast<double>(nominal_period_) / static_cast<double>(period_) - 1.0) * 1e6;
}

void Oscillator::check_time(fs_t t) const {
  if (t < anchor_time_) throw std::logic_error("Oscillator: query before anchor time");
}

std::int64_t Oscillator::tick_at(fs_t t) const {
  check_time(t);
  // t >= anchor_time_, so the difference only overflows when the anchor
  // phase is negative and t sits within |anchor| of the horizon.
  if (anchor_time_ < 0 && t > std::numeric_limits<fs_t>::max() + anchor_time_)
    throw std::overflow_error("Oscillator: tick_at past the femtosecond horizon");
  return anchor_tick_ + (t - anchor_time_) / period_;
}

fs_t Oscillator::edge_of_tick(std::int64_t k) const {
  if (k < anchor_tick_) throw std::logic_error("Oscillator: tick before anchor");
  const __int128 e = static_cast<__int128>(anchor_time_) +
                     static_cast<__int128>(k - anchor_tick_) * period_;
  return narrow_or_throw(e, "Oscillator: edge_of_tick past the femtosecond horizon");
}

fs_t Oscillator::next_edge_at_or_after(fs_t t) const {
  check_time(t);
  if (anchor_time_ < 0 && t > std::numeric_limits<fs_t>::max() + anchor_time_)
    throw std::overflow_error("Oscillator: next_edge past the femtosecond horizon");
  const fs_t since = t - anchor_time_;
  // Ceil division without forming since + period - 1 (which wraps near the
  // horizon): round up exactly when t is off-lattice.
  const fs_t k = since / period_ + (since % period_ != 0 ? 1 : 0);
  const __int128 e =
      static_cast<__int128>(anchor_time_) + static_cast<__int128>(k) * period_;
  return narrow_or_throw(e, "Oscillator: next_edge past the femtosecond horizon");
}

fs_t Oscillator::next_edge_after(fs_t t) const {
  const fs_t e = next_edge_at_or_after(t);
  if (e > t) return e;
  return narrow_or_throw(static_cast<__int128>(e) + period_,
                         "Oscillator: next_edge past the femtosecond horizon");
}

void Oscillator::set_period_at(fs_t t, fs_t new_period) {
  if (new_period <= 0) throw std::invalid_argument("Oscillator: non-positive period");
  check_time(t);
  // An unchanged period keeps the grid identical; skip the re-anchor so the
  // drift walk's frequent no-op updates cannot creep the anchor toward the
  // horizon guard.
  if (new_period == period_) return;
  // Re-anchor on the last edge at or before t so past edges are preserved.
  const std::int64_t k = tick_at(t);
  anchor_time_ = edge_of_tick(k);
  anchor_tick_ = k;
  period_ = new_period;
}

void Oscillator::set_ppm_at(fs_t t, double ppm) {
  set_period_at(t, period_from_ppm(nominal_period_, ppm));
}

}  // namespace dtpsim::phy
