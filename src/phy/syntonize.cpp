#include "phy/syntonize.hpp"

#include <cmath>

namespace dtpsim::phy {

Syntonizer::Syntonizer(sim::Simulator& sim, Oscillator& slave, const Oscillator& upstream,
                       SyntonizeParams params, Rng rng)
    : sim_(sim),
      slave_(slave),
      upstream_(upstream),
      params_(params),
      rng_(rng),
      proc_(sim, params.update_interval, [this] { update(); },
            sim::EventCategory::kDrift) {}

void Syntonizer::update() {
  // The recovered clock IS the upstream TX clock; the cleanup PLL adds a
  // small multiplicative residual.
  last_residual_ppb_ = rng_.normal(0.0, params_.residual_ppb);
  const double period = static_cast<double>(upstream_.period()) *
                        (1.0 + last_residual_ppb_ * 1e-9);
  slave_.set_period_at(sim_.now(), static_cast<fs_t>(std::llround(period)));
}

}  // namespace dtpsim::phy
