#pragma once

/// \file encoding_8b10b.hpp
/// IEEE 802.3 clause 36 8b/10b line coding — the 1 GbE PHY of Table 2.
///
/// Gigabit Ethernet does not use 64b/66b blocks: each byte becomes a
/// 10-bit symbol chosen (by running disparity) from two complementary
/// encodings, and control meanings ride on special K-codes (K28.5 commas
/// for idle/ordered sets). DTP at 1 GbE therefore embeds its messages in
/// the /I/ ordered sets between frames rather than in /E/ blocks; the codec
/// here is the real 5b/6b + 3b/4b construction with running-disparity
/// tracking, used by the conformance tests and the 1G DTP framing in
/// dtp/messages_1g.hpp.

#include <cstdint>
#include <optional>
#include <vector>

namespace dtpsim::phy {

/// A 10-bit line symbol (low 10 bits used, abcdei_fghj order, a = LSB).
using Symbol10 = std::uint16_t;

/// Encoder state: running disparity is -1 or +1.
enum class Disparity : std::int8_t { kNegative = -1, kPositive = +1 };

/// The control (K) codes defined by 8b/10b that clause 36 uses.
enum class KCode : std::uint8_t {
  kK28_0 = 0x1C,
  kK28_1 = 0x3C,
  kK28_2 = 0x5C,
  kK28_3 = 0x7C,
  kK28_4 = 0x9C,
  kK28_5 = 0xBC,  ///< the comma: start of every ordered set
  kK28_6 = 0xDC,
  kK28_7 = 0xFC,
  kK23_7 = 0xF7,  ///< /R/ carrier extend
  kK27_7 = 0xFB,  ///< /S/ start of packet
  kK29_7 = 0xFD,  ///< /T/ end of packet
  kK30_7 = 0xFE,  ///< /V/ error propagation
};

/// Stateful 8b/10b encoder.
class Encoder8b10b {
 public:
  explicit Encoder8b10b(Disparity initial = Disparity::kNegative) : rd_(initial) {}

  /// Encode one data byte (Dxx.y).
  Symbol10 encode_data(std::uint8_t byte);
  /// Encode one control code (Kxx.y). Only the clause-36 K-codes are legal.
  Symbol10 encode_control(KCode k);

  Disparity running_disparity() const { return rd_; }

 private:
  Symbol10 encode(std::uint8_t byte, bool control);
  Disparity rd_;
};

/// Decoded symbol: a data byte or a control code.
struct Decoded8b10b {
  std::uint8_t byte = 0;
  bool is_control = false;
};

/// Stateful 8b/10b decoder; returns nullopt for invalid symbols (code
/// violations — how the receiver detects line errors).
class Decoder8b10b {
 public:
  explicit Decoder8b10b(Disparity initial = Disparity::kNegative) : rd_(initial) {}

  std::optional<Decoded8b10b> decode(Symbol10 symbol);

  Disparity running_disparity() const { return rd_; }

 private:
  Disparity rd_;
};

/// True if the symbol contains a comma pattern (signal alignment point).
bool is_comma(Symbol10 symbol);

}  // namespace dtpsim::phy
