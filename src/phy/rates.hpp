#pragma once

/// \file rates.hpp
/// Ethernet PHY rate descriptors — the paper's Table 2.
///
/// DTP generalizes across link speeds by making one counter tick represent
/// 0.32 ns and incrementing the counter by a per-rate delta at every PCS
/// clock edge (Section 7):
///
///   rate   encoding  width  frequency    period   delta
///   1G     8b/10b    8 bit  125    MHz   8    ns  25
///   10G    64b/66b   32bit  156.25 MHz   6.4  ns  20
///   40G    64b/66b   64bit  625    MHz   1.6  ns  5
///   100G   64b/66b   64bit  1562.5 MHz   0.64 ns  2

#include <array>
#include <cstdint>
#include <string_view>

#include "common/time_units.hpp"

namespace dtpsim::phy {

/// Link speed of a PHY.
enum class LinkRate : std::uint8_t { k1G, k10G, k40G, k100G };

/// Line-coding scheme used at a given rate.
enum class Encoding : std::uint8_t { k8b10b, k64b66b };

/// Static parameters of one row of Table 2.
struct RateSpec {
  LinkRate rate;
  std::string_view name;
  Encoding encoding;
  int data_width_bits;       ///< PCS datapath width
  double frequency_hz;       ///< PCS clock frequency
  fs_t period_fs;            ///< PCS clock period (exact in femtoseconds)
  std::uint32_t counter_delta;  ///< DTP counter increment per tick (0.32 ns units)
  double bits_per_second;    ///< MAC-layer data rate
};

/// One DTP counter unit at any rate: 0.32 ns.
inline constexpr fs_t kCounterUnitFs = 320'000;

/// The Table 2 rows, exact integer periods.
inline constexpr std::array<RateSpec, 4> kRateTable{{
    {LinkRate::k1G, "1G", Encoding::k8b10b, 8, 125e6, 8'000'000, 25, 1e9},
    {LinkRate::k10G, "10G", Encoding::k64b66b, 32, 156.25e6, 6'400'000, 20, 10e9},
    {LinkRate::k40G, "40G", Encoding::k64b66b, 64, 625e6, 1'600'000, 5, 40e9},
    {LinkRate::k100G, "100G", Encoding::k64b66b, 64, 1562.5e6, 640'000, 2, 100e9},
}};

/// Lookup a rate row.
constexpr const RateSpec& rate_spec(LinkRate r) {
  return kRateTable[static_cast<std::size_t>(r)];
}

/// Nominal PCS clock period at a rate.
constexpr fs_t nominal_period(LinkRate r) { return rate_spec(r).period_fs; }

/// Number of 66-bit blocks needed to carry `bytes` of MAC frame data
/// (including preamble/SFD) through the 64b/66b PCS: 8 bytes per block lane
/// plus one block for the terminate control character. This matches the
/// paper's accounting (MTU 1522 B ~= 191 blocks + IPG ~= 200 clock cycles at
/// 10G; jumbo ~9 kB ~= 1129 blocks).
constexpr std::int64_t blocks_for_frame(std::int64_t bytes) {
  return (bytes + 7) / 8 + 1;
}

/// Ticks the PCS is occupied by one frame at `rate` (one block per tick for
/// 64b/66b widths used here; at 10G the PCS processes one 66-bit block per
/// 6.4 ns cycle).
constexpr std::int64_t ticks_for_frame(std::int64_t bytes) {
  return blocks_for_frame(bytes);
}

/// IEEE 802.3 oscillator frequency tolerance: +-100 ppm.
inline constexpr double kMaxPpm = 100.0;

}  // namespace dtpsim::phy
