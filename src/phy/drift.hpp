#pragma once

/// \file drift.hpp
/// Temperature-induced oscillator drift model.
///
/// Oscillators with the same nominal frequency run at different and *slowly
/// wandering* rates (Section 2.3.1). We model the wander as a bounded random
/// walk on the ppm offset: every `update_interval` the offset takes a
/// uniform step in [-step_ppm, +step_ppm] and is reflected at the +-bound
/// (IEEE 802.3's +-100 ppm unless configured tighter). This compresses days
/// of thermal wander into seconds of simulation without changing the
/// mechanism DTP has to survive.

#include "common/rng.hpp"
#include "phy/oscillator.hpp"
#include "sim/simulator.hpp"

namespace dtpsim::phy {

/// Parameters for the drift random walk.
struct DriftParams {
  double bound_ppm = kMaxPpm;     ///< reflecting bound on |ppm|
  double step_ppm = 0.5;          ///< max step magnitude per update
  fs_t update_interval = from_ms(10);  ///< how often the walk steps
};

/// Drives an Oscillator's ppm with a bounded random walk.
class DriftProcess {
 public:
  /// \param sim  simulator to schedule updates on
  /// \param osc  oscillator to drive (must outlive the process)
  /// \param rng  private random stream
  DriftProcess(sim::Simulator& sim, Oscillator& osc, DriftParams params, Rng rng);

  /// Begin stepping the walk.
  void start() { proc_.start(); }
  /// Stop stepping.
  void stop() { proc_.stop(); }

  /// Attribute walk events to the owning device (parallel mode: the walk
  /// must run on the shard that owns the oscillator). Set before start().
  void set_affinity(std::int32_t node) { proc_.set_affinity(node); }

  /// Current ppm of the walk (equals the oscillator's ppm after each step).
  double current_ppm() const { return ppm_; }

 private:
  void step();

  sim::Simulator& sim_;
  Oscillator& osc_;
  DriftParams params_;
  Rng rng_;
  double ppm_;
  sim::PeriodicProcess proc_;
};

}  // namespace dtpsim::phy
