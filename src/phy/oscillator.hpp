#pragma once

/// \file oscillator.hpp
/// Free-running quartz oscillator model with exact tick-edge arithmetic.
///
/// Every network device in the paper is driven by its own oscillator whose
/// frequency sits within +-100 ppm of nominal (IEEE 802.3) but is otherwise
/// unknown and may wander with temperature. DTP's entire error budget comes
/// from the interaction of these slightly-mismatched tick grids, so tick
/// edges here are computed with exact integer femtosecond arithmetic: an
/// oscillator is a grid of edges `edge_of_tick(k) = anchor_time + (k -
/// anchor_tick) * period`, re-anchored whenever the period changes (drift).
///
/// The simulation never "ticks" an oscillator; protocol code asks analytic
/// queries (which tick contains time t, when is the next edge) only at event
/// times.

#include <cstdint>

#include "common/time_units.hpp"
#include "phy/rates.hpp"

namespace dtpsim::phy {

/// Convert a ppm frequency offset into an integer femtosecond period.
/// Positive ppm means the oscillator runs fast (shorter period).
fs_t period_from_ppm(fs_t nominal_period, double ppm);

/// A free-running oscillator: an infinite grid of tick edges.
///
/// Invariants:
///  * the edge of `anchor_tick` is exactly `anchor_time`;
///  * queries are only valid for times >= the current anchor (simulated time
///    moves forward; the anchor only moves forward too);
///  * tick indices are monotone in time.
class Oscillator {
 public:
  /// \param nominal_period  nominal PCS clock period (e.g. 6'400'000 fs)
  /// \param ppm             initial frequency offset in ppm
  /// \param phase           time of tick 0's edge (allows staggered startup)
  Oscillator(fs_t nominal_period, double ppm = 0.0, fs_t phase = 0);

  /// Nominal period this oscillator was specified with.
  fs_t nominal_period() const { return nominal_period_; }

  /// Current actual period in femtoseconds.
  fs_t period() const { return period_; }

  /// Current frequency offset from nominal, in ppm (derived from period).
  double ppm() const;

  /// Index of the last tick whose edge is at or before `t`.
  /// Requires t >= anchor time.
  std::int64_t tick_at(fs_t t) const;

  /// Time of the edge of tick `k`. Requires k >= anchor tick.
  fs_t edge_of_tick(std::int64_t k) const;

  /// Time of the first edge at or after `t`. Requires t >= anchor time.
  fs_t next_edge_at_or_after(fs_t t) const;

  /// Time of the first edge strictly after `t`. Requires t >= anchor time.
  fs_t next_edge_after(fs_t t) const;

  /// Change the period as of time `t` (drift). Edges at or before `t` are
  /// preserved; the new period applies from the last edge at or before `t`.
  /// Requires t >= anchor time.
  void set_period_at(fs_t t, fs_t new_period);

  /// Convenience: set frequency offset in ppm as of time `t`.
  void set_ppm_at(fs_t t, double ppm);

 private:
  void check_time(fs_t t) const;

  fs_t nominal_period_;
  fs_t period_;
  fs_t anchor_time_;         // edge time of anchor_tick_
  std::int64_t anchor_tick_; // tick index anchored at anchor_time_
};

}  // namespace dtpsim::phy
