#pragma once

/// \file port.hpp
/// A DTP-capable physical port and the cable that joins two of them.
///
/// `PhyPort` models the TX/RX paths of one network port at block
/// granularity without simulating every idle block as an event:
///
///   * Frame transmissions occupy the line for `blocks_for_frame` ticks of
///     the local oscillator, followed by a minimum inter-packet gap (the
///     standard's >= 12 idle characters), exactly the lattice the paper's
///     Section 4.1 describes.
///   * DTP control messages are 56-bit values carried in one idle (/E/)
///     block. Upper layers do not hand the port a finished message; they
///     hand it a *factory* that is invoked at the instant the block is
///     serialized, because DTP hardware stamps the counter at transmission
///     time (Section 4.2: the DTP sublayer and the TX PCS share one clock
///     domain, so insertion costs zero delay).
///   * The receive path delivers control messages through a SyncFifo
///     crossing into the local clock domain — the paper's only source of
///     nondeterminism — and frames after full reception (store-and-forward
///     at the receiving MAC boundary).
///
/// A `Cable` couples two ports with a symmetric, constant propagation delay
/// (Section 3.1's assumption) and an optional bit-error rate that corrupts
/// control payloads and frames (Section 3.2 "Handling failures").

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time_units.hpp"
#include "phy/oscillator.hpp"
#include "phy/rates.hpp"
#include "phy/sync_fifo.hpp"
#include "sim/simulator.hpp"

namespace dtpsim::phy {

class Cable;

/// A control message (one /E/ block) delivered to the local clock domain.
struct ControlRx {
  std::uint64_t bits56 = 0;    ///< 56-bit idle-field payload (possibly corrupted)
  fs_t wire_arrival = 0;       ///< when the block finished arriving on the wire
  CrossingResult crossing{};   ///< when/where it became visible locally
  bool corrupted = false;      ///< ground truth: did the cable flip a bit?
};

/// A frame delivered to the MAC boundary.
struct FrameRx {
  std::shared_ptr<const void> payload;  ///< opaque upper-layer object
  std::uint32_t wire_bytes = 0;         ///< size on the wire incl. preamble
  bool fcs_ok = true;                   ///< false if the cable corrupted it
  fs_t arrival_time = 0;                ///< last bit on the wire
};

/// Per-port configuration.
struct PortParams {
  LinkRate rate = LinkRate::k10G;
  int ipg_blocks = 2;        ///< minimum idle blocks between frames (>= 12 /I/)
  SyncFifoParams fifo{};     ///< CDC model parameters
};

/// One physical port: TX serialization, RX delivery, DTP idle-block slots.
class PhyPort {
 public:
  /// Invoked when an idle-block slot is granted; returns the 56 bits to
  /// send. `tx_time`/`tx_tick` identify the local tick whose block carries
  /// the message.
  using ControlFactory = std::function<std::uint64_t(fs_t tx_time, std::int64_t tx_tick)>;

  /// \param sim  simulator (must outlive the port)
  /// \param osc  local oscillator — the TX clock domain (must outlive)
  PhyPort(sim::Simulator& sim, Oscillator& osc, PortParams params, std::string name);

  PhyPort(const PhyPort&) = delete;
  PhyPort& operator=(const PhyPort&) = delete;

  const std::string& name() const { return name_; }
  Oscillator& oscillator() { return osc_; }
  const Oscillator& oscillator() const { return osc_; }
  const RateSpec& rate() const { return rate_spec(params_.rate); }
  const PortParams& params() const { return params_; }

  /// Device-graph node this port belongs to (-1 until a Device adopts it).
  /// Drives event affinity: everything the port schedules runs on the
  /// owning device's shard in parallel mode.
  std::int32_t node() const { return node_; }
  void set_node(std::int32_t node) { node_ = node; }

  bool link_up() const { return peer_ != nullptr; }
  PhyPort* peer() { return peer_; }
  /// One-way propagation delay of the attached cable; requires link_up().
  fs_t propagation_delay() const;

  /// Queue a control-message factory; it is granted the next idle block
  /// (immediately if the line is idle, in the next inter-packet gap if not).
  void request_control_slot(ControlFactory factory);

  // --- Bridged quiet path (Simulator::EngineMode::kBridged; DESIGN.md §12) --
  //
  // When the line is idle and on-lattice, a control slot requested "now"
  // would be granted by a service event at this very instant. The fused path
  // runs that service inline — same sequence-number positions, same counter
  // bumps — skipping the event machinery entirely. Callers must check
  // fusibility, reserve (at the position request_control_slot would consume
  // the service's sequence number), then fire.

  /// True iff a slot requested right now would be serviced at this exact
  /// instant with nothing able to interleave: link up, no queued factories,
  /// no armed service event, line free, on a tick edge, and no same-instant
  /// event pending ahead of the would-be service key. `tx_client` identifies
  /// the caller's beacon chain (its bridge-step client pointer) so the gate
  /// can ignore sibling ports' benign timers while still refusing to run
  /// ahead of a second chain on the same port.
  bool control_slot_fusible(const void* tx_client) const;

  /// Account for the fused service event's schedule (consumes its sequence
  /// number). Must run exactly where request_control_slot would have armed.
  void fuse_reserve_control();

  /// Run the fused service inline: fire accounting, factory at (now, tick),
  /// TX probe, line bookkeeping, and cable transmission.
  void fuse_fire_control(const ControlFactory& factory);

  /// Number of factories waiting for an idle block.
  std::size_t pending_control() const { return control_queue_.size(); }

  /// Discard every queued control factory. Required when the layer that
  /// queued them is being destroyed (the factories capture it): an agent
  /// torn down mid-run (node crash) must not leave callbacks into freed
  /// protocol state waiting for an idle block.
  void clear_pending_control() { control_queue_.clear(); }

  /// Earliest time a new frame may start serializing (IPG respected).
  fs_t frame_clear_time() const;

  /// Timing of one frame transmission.
  struct TxTiming {
    fs_t start;               ///< first bit on the wire (hardware TX timestamp point)
    fs_t end;                 ///< last bit on the wire
    fs_t next_frame_allowed;  ///< end plus inter-packet gap
  };

  /// Serialize a frame starting at the first permissible tick edge at or
  /// after now. Requires link_up().
  TxTiming send_frame(std::uint32_t wire_bytes, std::shared_ptr<const void> payload);

  /// Total frames / control blocks this port transmitted (diagnostics; the
  /// zero-overhead claim is `frames_sent` unchanged by enabling DTP).
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t control_blocks_sent() const { return control_sent_; }

  /// CDC observability: control blocks that crossed this port's SyncFifo
  /// into the local clock domain, and how many of those crossings drew the
  /// metastability penalty cycle (the paper's only nondeterminism source).
  /// Single-writer (the port's shard); sampled at obs snapshot sync points.
  std::uint64_t fifo_crossings() const { return fifo_crossings_; }
  std::uint64_t fifo_extra_cycles() const { return fifo_extra_cycles_; }

  /// When the current (or most recent) cable attached — the anchor for the
  /// MAC's post-link-training data hold-off.
  fs_t last_link_up_at() const { return last_link_up_at_; }

  // Upper-layer hooks. All optional; unset hooks drop the event.
  std::function<void()> on_link_up;                  ///< fired when cable attaches
  std::function<void()> on_link_down;                ///< fired when cable detaches
  std::function<void(const ControlRx&)> on_control;  ///< DTP sublayer input
  std::function<void(const FrameRx&)> on_frame;      ///< MAC input

  // Observation probes (check::Sentinel). Pure observers, distinct from the
  // protocol hooks above: they must not schedule events or mutate port
  // state. Fired on the port's shard thread in parallel mode, so a probe
  // shared across ports must synchronize its own state.
  /// Fired as a control block is serialized, before the cable sees it:
  /// the 56-bit payload and the tick edge it occupies.
  std::function<void(std::uint64_t bits56, fs_t tx_start)> probe_control_tx;
  /// Fired when a control block becomes visible in the local clock domain,
  /// just before `on_control`.
  std::function<void(const ControlRx&)> probe_control_rx;

 private:
  friend class Cable;

  void link_established(Cable* cable, PhyPort* peer);
  void link_lost();
  void deliver_control(std::uint64_t bits56, fs_t tx_end, bool corrupted);
  void deliver_frame(FrameRx rx);
  void schedule_control_service();

  // Bridged-step trampolines and bodies. The arrival step replaces the link
  // delivery event (CDC crossing at the wire-arrival instant); the apply
  // step replaces the visibility event (probe + on_control at the crossing's
  // visible edge). Payload packing: a = bits56, b = wire arrival, c =
  // visible tick, d = bit0 random_extra | bit1 corrupted.
  static void bridge_arrival_step(void* client,
                                  const sim::EventQueue::BridgeStep& s, fs_t t);
  static void bridge_apply_step(void* client,
                                const sim::EventQueue::BridgeStep& s, fs_t t);
  void bridge_arrival(std::uint64_t bits56, fs_t wire_arrival, bool corrupted);
  void bridge_apply(const ControlRx& rx);

  sim::Simulator& sim_;
  Oscillator& osc_;
  PortParams params_;
  std::string name_;
  std::int32_t node_ = -1;
  Cable* cable_ = nullptr;
  PhyPort* peer_ = nullptr;
  SyncFifo fifo_;

  fs_t line_free_ = 0;      ///< end of the last serialized block
  fs_t frame_allowed_ = 0;  ///< line_free_ plus any outstanding IPG
  fs_t last_link_up_at_ = 0;
  std::deque<ControlFactory> control_queue_;
  bool control_service_scheduled_ = false;
  fs_t control_service_at_ = 0;             ///< slot the service event is armed for
  sim::EventHandle control_service_event_;  ///< so a busied line can move it

  std::uint64_t frames_sent_ = 0;
  std::uint64_t control_sent_ = 0;
  std::uint64_t fifo_crossings_ = 0;
  std::uint64_t fifo_extra_cycles_ = 0;
};

/// Full-duplex point-to-point cable between two ports.
class Cable {
 public:
  struct Params {
    fs_t propagation_delay = from_ns(50);  ///< ~10 m of fiber/twinax
    double ber = 0.0;                      ///< per-bit error probability
  };

  /// Connect `a` and `b`; both ports' `on_link_up` hooks fire immediately.
  Cable(sim::Simulator& sim, PhyPort& a, PhyPort& b, Params params);

  Cable(const Cable&) = delete;
  Cable& operator=(const Cable&) = delete;

  /// Unplug the cable: both ports go link-down (their `on_link_down` hooks
  /// fire) and can later be re-connected with a fresh Cable. Blocks and
  /// frames already in flight are lost — pulling the cable kills the light
  /// in the fiber, so nothing is ever delivered to a link-down port.
  /// Idempotent.
  void disconnect();
  bool connected() const { return connected_; }

  PhyPort& port_a() { return a_; }
  PhyPort& port_b() { return b_; }

  fs_t propagation_delay() const { return params_.propagation_delay; }
  double ber() const { return params_.ber; }

  /// Change the bit-error rate mid-run (fault injection: BER bursts).
  void set_ber(double ber) { params_.ber = ber; }

  /// Probability that a control block is silently swallowed (fault
  /// injection: beacon-loss windows — models momentary loss of block lock
  /// where the receiver PCS discards /E/ blocks without seeing bit flips).
  void set_control_drop(double p) { control_drop_ = p; }
  double control_drop() const { return control_drop_; }

  // --- Gray-failure seams (chaos: asymmetric_delay / limping_port /
  // silent_corruption). All are per-direction (0 = a->b, 1 = b->a) and act
  // on the control path only — they model a degraded transceiver lane, not
  // an unplugged cable, so nothing here trips link-down or the BER decoder.
  // Extra delay and stalls only ever *increase* an arrival time, which keeps
  // the parallel engine's registered-edge lookahead conservative.

  /// One direction of the cable gains constant extra latency, silently
  /// biasing the symmetric-propagation assumption behind measured OWD.
  void set_extra_delay(int dir, fs_t extra);
  fs_t extra_delay(int dir) const { return extra_delay_[check_dir(dir)]; }

  /// Intermittent TX stalls: with probability `prob`, a control block is
  /// held for `stall` before it starts propagating (a limping serializer).
  /// Stalled blocks never overtake later ones — the line is FIFO.
  void set_tx_stall(int dir, double prob, fs_t stall);

  /// With probability `prob`, flip one low bit of the counter field in the
  /// 56-bit payload. Unlike the BER path the block is NOT flagged corrupted:
  /// the damage survives framing and reaches the DTP sublayer as truth.
  void set_silent_corrupt(int dir, double prob);

  /// Cumulative corrupted / dropped transmissions (diagnostics; summed over
  /// both directions — each direction keeps its own counter because the two
  /// endpoints may transmit from different worker threads).
  std::uint64_t corrupted_control() const {
    return corrupted_control_[0] + corrupted_control_[1];
  }
  std::uint64_t corrupted_frames() const {
    return corrupted_frames_[0] + corrupted_frames_[1];
  }
  std::uint64_t dropped_control() const {
    return dropped_control_[0] + dropped_control_[1];
  }

 private:
  friend class PhyPort;

  PhyPort& other_side(const PhyPort& from);
  /// 0 for a->b, 1 for b->a. Each direction has its own RNG stream, error
  /// counters, and (edge, message) key sequence, so the two endpoints can
  /// transmit concurrently from their own shards.
  int direction_of(const PhyPort& from) const { return &from == &a_ ? 0 : 1; }
  static int check_dir(int dir);
  /// Move one control block across; applies BER and schedules delivery.
  void transmit_control(PhyPort& from, std::uint64_t bits56, fs_t tx_end);
  /// Move one frame across; applies BER and schedules delivery.
  void transmit_frame(PhyPort& from, std::uint32_t wire_bytes,
                      std::shared_ptr<const void> payload, fs_t tx_end);

  /// Remember a scheduled delivery so disconnect() can cancel it. Handles
  /// live in a power-of-two ring sized for the natural in-flight depth
  /// (propagation delay / block time); the head is pruned of already-fired
  /// entries only when the ring wraps full, so steady-state tracking is O(1)
  /// with no periodic scans. Mailbox-routed deliveries have no handle and
  /// are cancelled by owner purge instead.
  void track(sim::EventHandle h);
  void grow_ring();

  sim::Simulator& sim_;
  PhyPort& a_;
  PhyPort& b_;
  Params params_;
  Rng rng_ab_;  ///< a->b direction stream
  Rng rng_ba_;  ///< b->a direction stream
  std::uint32_t dir_id_[2];        ///< globally unique edge-direction ids
  std::uint32_t tx_seq_[2] = {};   ///< per-direction message index (key low bits)
  bool connected_ = true;
  double control_drop_ = 0.0;
  fs_t extra_delay_[2] = {};          ///< gray: constant one-way delay bias
  double stall_prob_[2] = {};         ///< gray: limping-port stall probability
  fs_t stall_[2] = {};                ///< gray: per-stall hold time
  double silent_corrupt_[2] = {};     ///< gray: unflagged counter-bit flips
  fs_t last_control_arrival_[2] = {};  ///< FIFO clamp under stalls/delay
  std::vector<sim::EventHandle> ring_;  ///< in-flight deliveries (power-of-two)
  std::size_t ring_head_ = 0;
  std::size_t ring_count_ = 0;
  std::uint64_t corrupted_control_[2] = {};
  std::uint64_t corrupted_frames_[2] = {};
  std::uint64_t dropped_control_[2] = {};
};

}  // namespace dtpsim::phy
