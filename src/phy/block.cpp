#include "phy/block.hpp"

#include <cstdio>
#include <stdexcept>

namespace dtpsim::phy {

bool Block::is_terminate() const {
  if (!is_control()) return false;
  const std::uint8_t bt = block_type();
  for (std::uint8_t t : kBlockTypeTerm)
    if (bt == t) return true;
  return false;
}

int Block::terminate_data_bytes() const {
  const std::uint8_t bt = block_type();
  for (int i = 0; i < 8; ++i)
    if (bt == kBlockTypeTerm[i]) return i;
  throw std::logic_error("Block: not a terminate block");
}

void Block::set_idle_field(std::uint64_t bits56) {
  if (!is_idle_frame()) throw std::logic_error("Block: idle field on non-idle block");
  payload = (payload & 0xFFULL) | ((bits56 & ((1ULL << 56) - 1)) << 8);
}

void Block::set_byte(int i, std::uint8_t v) {
  const int shift = 8 * i;
  payload = (payload & ~(0xFFULL << shift)) | (static_cast<std::uint64_t>(v) << shift);
}

std::string Block::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s:%016llx", is_data() ? "D" : "C",
                static_cast<unsigned long long>(payload));
  return buf;
}

Block make_idle_block() {
  Block b;
  b.sync = kSyncControl;
  b.payload = kBlockTypeIdle;  // eight 7-bit idle codes are all-zero
  return b;
}

Block make_start_block(const std::uint8_t bytes7[7]) {
  Block b;
  b.sync = kSyncControl;
  b.payload = kBlockTypeStart;
  for (int i = 0; i < 7; ++i) b.set_byte(i + 1, bytes7[i]);
  return b;
}

Block make_data_block(const std::uint8_t bytes8[8]) {
  Block b;
  b.sync = kSyncData;
  b.payload = 0;
  for (int i = 0; i < 8; ++i) b.set_byte(i, bytes8[i]);
  return b;
}

Block make_terminate_block(const std::uint8_t* bytes, int n) {
  if (n < 0 || n > 7) throw std::invalid_argument("make_terminate_block: n out of range");
  Block b;
  b.sync = kSyncControl;
  b.payload = kBlockTypeTerm[n];
  for (int i = 0; i < n; ++i) b.set_byte(i + 1, bytes[i]);
  return b;
}

}  // namespace dtpsim::phy
