#include "phy/drift.hpp"

#include <cmath>

namespace dtpsim::phy {

DriftProcess::DriftProcess(sim::Simulator& sim, Oscillator& osc, DriftParams params, Rng rng)
    : sim_(sim),
      osc_(osc),
      params_(params),
      rng_(rng),
      ppm_(osc.ppm()),
      proc_(sim, params.update_interval, [this] { step(); },
            sim::EventCategory::kDrift) {}

void DriftProcess::step() {
  ppm_ += rng_.uniform_real(-params_.step_ppm, params_.step_ppm);
  // Reflect at the +-bound so the walk stays inside the 802.3 envelope.
  if (ppm_ > params_.bound_ppm) ppm_ = 2 * params_.bound_ppm - ppm_;
  if (ppm_ < -params_.bound_ppm) ppm_ = -2 * params_.bound_ppm - ppm_;
  osc_.set_ppm_at(sim_.now(), ppm_);
  // Continue the walk from the value the integer period actually realizes,
  // so current_ppm() and osc_.ppm() cannot drift apart across steps.
  ppm_ = osc_.ppm();
}

}  // namespace dtpsim::phy
