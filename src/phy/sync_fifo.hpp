#pragma once

/// \file sync_fifo.hpp
/// Clock-domain-crossing (CDC) synchronization FIFO model.
///
/// A DTP message is recovered in the RX clock domain (the *sender's* clock,
/// recovered from the bitstream) and must cross into the receiver's local TX
/// clock domain where the DTP logic and counter live. The crossing costs:
///
///   * phase quantization — the message waits for the next local tick edge
///     (0..T of delay, deterministic given the phase relation), and
///   * metastability guard flops — with some probability the consumer
///     samples one cycle later (the "one random delay" of Section 2.5), and
///   * a fixed processing pipeline of a few cycles (deterministic; it is
///     absorbed into the measured one-way delay during INIT).
///
/// This FIFO is the *only* nondeterminism in an otherwise deterministic DTP
/// datapath; the paper's entire +-2-tick OWD error analysis (Section 3.3)
/// and the alpha = 3 correction exist because of it.

#include <cstdint>

#include "common/rng.hpp"
#include "common/time_units.hpp"
#include "phy/oscillator.hpp"

namespace dtpsim::phy {

/// Tunables for the CDC model.
struct SyncFifoParams {
  /// Probability the guard flop adds a cycle *when the arrival lands inside
  /// the metastability window*.
  double extra_cycle_prob = 0.5;
  int pipeline_cycles = 2;  ///< deterministic RX processing pipeline
  /// Fraction of the local period around the capture edge within which the
  /// sampled bit may resolve either way. Outside the window the crossing
  /// delay is a *deterministic* function of the (slowly drifting) phase
  /// relation between the two clock domains — which is why real DTP offsets
  /// wander smoothly inside the bound rather than jittering per message
  /// (Fig. 6a/6b), and why the paper speaks of "one random delay [that]
  /// *could* be added".
  double metastability_window = 0.08;
};

/// Result of a crossing: when the receiver's logic first sees the message.
struct CrossingResult {
  std::int64_t visible_tick;  ///< receiver-local tick index of visibility
  fs_t visible_time;          ///< edge time of that tick
  int random_extra;           ///< 0 or 1: the metastability cycle actually added
};

/// Models one synchronization FIFO between the recovered RX clock and a
/// local oscillator's domain.
class SyncFifo {
 public:
  SyncFifo(SyncFifoParams params, Rng rng) : params_(params), rng_(rng) {}

  /// Compute when a message arriving on the wire at `arrival` becomes
  /// visible to logic clocked by `local`.
  CrossingResult cross(const Oscillator& local, fs_t arrival);

  const SyncFifoParams& params() const { return params_; }

 private:
  SyncFifoParams params_;
  Rng rng_;
};

}  // namespace dtpsim::phy
