#pragma once

/// \file scrambler.hpp
/// Self-synchronizing scrambler/descrambler, polynomial 1 + x^39 + x^58
/// (IEEE 802.3 clause 49.2.6).
///
/// The 64-bit payload of every block is scrambled before serialization to
/// maintain DC balance on the wire; the 2-bit sync header is not. Section
/// 4.4 notes that DTP's rewriting of idle bits does not disturb the line's
/// physics precisely because the scrambler runs *after* DTP insertion — the
/// test suite checks that scramble/descramble round-trips DTP-bearing
/// blocks exactly and that the descrambler self-synchronizes after seeding
/// with arbitrary state.

#include <cstdint>

#include "phy/block.hpp"

namespace dtpsim::phy {

/// TX-side scrambler. Stateful across blocks, like the hardware LFSR.
class Scrambler {
 public:
  /// \param seed initial 58-bit LFSR state (any value is legal).
  explicit Scrambler(std::uint64_t seed = 0x3FF'FFFF'FFFF'FFFFULL & 0x3FFFFFFFFFFFFFFULL);

  /// Scramble a 64-bit payload (bit 0 first on the wire).
  std::uint64_t scramble(std::uint64_t payload);

  /// Scramble a block in place (payload only; sync header untouched).
  Block scramble_block(Block b);

  std::uint64_t state() const { return state_; }

 private:
  std::uint64_t state_;  // 58-bit LFSR
};

/// RX-side descrambler; self-synchronizes within 58 bits regardless of its
/// initial state.
class Descrambler {
 public:
  explicit Descrambler(std::uint64_t seed = 0);

  /// Descramble a 64-bit payload.
  std::uint64_t descramble(std::uint64_t payload);

  /// Descramble a block (payload only).
  Block descramble_block(Block b);

  std::uint64_t state() const { return state_; }

 private:
  std::uint64_t state_;  // 58-bit shift register of received scrambled bits
};

}  // namespace dtpsim::phy
