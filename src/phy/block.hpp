#pragma once

/// \file block.hpp
/// 66-bit PCS block model (IEEE 802.3 clause 49, 10GBASE-R).
///
/// The 64b/66b PCS moves 66-bit blocks: a 2-bit sync header (0b01 = data,
/// 0b10 = control) followed by a 64-bit payload. A pure-idle control block
/// (`/E/`, block type 0x1e) carries eight 7-bit idle control codes = 56 free
/// bits; DTP hijacks exactly those 56 bits for its protocol messages
/// (Section 4.4: 3-bit message type + 53-bit counter payload) and restores
/// them to zeros (idles) before the block reaches the MAC.

#include <cstdint>
#include <string>

namespace dtpsim::phy {

/// Sync header values.
inline constexpr std::uint8_t kSyncData = 0b01;
inline constexpr std::uint8_t kSyncControl = 0b10;

/// Control block type bytes (clause 49, figure 49-7).
inline constexpr std::uint8_t kBlockTypeIdle = 0x1E;     ///< eight control chars (/E/)
inline constexpr std::uint8_t kBlockTypeStart = 0x78;    ///< /S/ + 7 data bytes
inline constexpr std::uint8_t kBlockTypeOrderedSet = 0x4B;

/// Terminate block types /T0/../T7/: index = number of data bytes before T.
inline constexpr std::uint8_t kBlockTypeTerm[8] = {0x87, 0x99, 0xAA, 0xB4,
                                                   0xCC, 0xD2, 0xE1, 0xFF};

/// One 66-bit PCS block.
struct Block {
  std::uint8_t sync = kSyncControl;  ///< 2-bit sync header
  std::uint64_t payload = 0;         ///< 64-bit payload, LSB = first-on-wire byte 0

  bool is_data() const { return sync == kSyncData; }
  bool is_control() const { return sync == kSyncControl; }

  /// Block type byte of a control block (payload byte 0).
  std::uint8_t block_type() const { return static_cast<std::uint8_t>(payload & 0xFF); }

  /// True for an all-idle control block (whether or not DTP bits are set).
  bool is_idle_frame() const { return is_control() && block_type() == kBlockTypeIdle; }
  bool is_start() const { return is_control() && block_type() == kBlockTypeStart; }
  bool is_terminate() const;
  /// For a terminate block, how many data bytes it carries (0..7).
  int terminate_data_bytes() const;

  /// The 56 bits following the block type byte of an idle block — the field
  /// DTP uses for its messages. Zero means "plain idles".
  std::uint64_t idle_field() const { return payload >> 8; }
  void set_idle_field(std::uint64_t bits56);

  /// Byte `i` (0..7) of the payload in wire order.
  std::uint8_t byte(int i) const { return static_cast<std::uint8_t>(payload >> (8 * i)); }
  void set_byte(int i, std::uint8_t v);

  bool operator==(const Block&) const = default;

  std::string to_string() const;
};

/// A pure idle block (all /I/ characters, no DTP message).
Block make_idle_block();
/// A start block carrying the first 7 bytes of a frame.
Block make_start_block(const std::uint8_t bytes7[7]);
/// A data block carrying 8 frame bytes.
Block make_data_block(const std::uint8_t bytes8[8]);
/// A terminate block carrying `n` (0..7) final frame bytes.
Block make_terminate_block(const std::uint8_t* bytes, int n);

}  // namespace dtpsim::phy
