#include "obs/session.hpp"

#include <algorithm>

#include "dtp/agent.hpp"

namespace dtpsim::obs {

Session::Session(net::Network& net, dtp::DtpNetwork* dtp, SessionConfig cfg)
    : net_(net),
      dtp_(dtp),
      sim_(net.simulator()),
      cfg_(std::move(cfg)),
      trace_on_(!cfg_.trace_path.empty() || cfg_.trace_in_memory),
      metrics_on_(!cfg_.metrics_path.empty() || cfg_.metrics_in_memory),
      hub_(HubConfig{metrics_on_, trace_on_, cfg_.metrics_path, cfg_.trace_path}),
      devices_(net.devices()) {
  if (!enabled()) return;
  sim_.set_obs(&hub_);
  if (TraceSink* tr = hub_.trace()) {
    tracks_.reserve(devices_.size());
    for (const net::Device* dev : devices_) tracks_.push_back(tr->track(dev->name()));
  }
  wire_ports();
}

Session::~Session() {
  if (enabled()) sim_.set_obs(nullptr);
}

std::uint32_t Session::device_track(const net::Device* dev) const {
  for (std::size_t i = 0; i < devices_.size(); ++i)
    if (devices_[i] == dev) return i < tracks_.size() ? tracks_[i] : 0;
  return 0;
}

void Session::wire_ports() {
  if (dtp_ == nullptr || !trace_on_) return;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    dtp::Agent* agent = dtp_->agent_of(devices_[i]);
    if (agent == nullptr) continue;
    for (std::size_t p = 0; p < agent->port_count(); ++p)
      agent->port_logic(p).set_obs(&hub_, tracks_[i]);
  }
}

void Session::start(fs_t horizon) {
  if (!enabled() || started_) return;
  started_ = true;

  const fs_t now = sim_.now();
  interval_ = cfg_.metrics_interval > 0
                  ? cfg_.metrics_interval
                  : std::max<fs_t>(1, (horizon > now ? horizon - now : 0) / 256);

  if (MetricsRegistry* m = hub_.metrics()) {
    // Event core: totals + per-category executed counts, pulled from the
    // engine's own instrumentation. Collecting SimStats walks every shard
    // queue, so it is refreshed ONCE per snapshot into a cache the nine
    // probes below read — not once per probe (at high shard counts the
    // repeated walk dominated snapshot cost).
    m->before_snapshot([this] { stats_cache_ = sim_.stats(); });
    m->probe("sim.scheduled", [this] { return static_cast<double>(stats_cache_.scheduled); });
    m->probe("sim.executed", [this] { return static_cast<double>(stats_cache_.executed); });
    m->probe("sim.cancelled", [this] { return static_cast<double>(stats_cache_.cancelled); });
    for (std::size_t c = 0; c < sim::kEventCategoryCount; ++c) {
      const auto cat = static_cast<sim::EventCategory>(c);
      m->probe(std::string("sim.executed.") + sim::category_name(cat),
               [this, c] { return static_cast<double>(stats_cache_.executed_by_category[c]); });
    }

    // PHY: frames, control blocks, and CDC crossings summed over all ports.
    m->probe("phy.frames_sent", [this] {
      std::uint64_t n = 0;
      for (net::Device* d : devices_)
        for (std::size_t p = 0; p < d->port_count(); ++p) n += d->port(p).frames_sent();
      return static_cast<double>(n);
    });
    m->probe("phy.control_blocks_sent", [this] {
      std::uint64_t n = 0;
      for (net::Device* d : devices_)
        for (std::size_t p = 0; p < d->port_count(); ++p)
          n += d->port(p).control_blocks_sent();
      return static_cast<double>(n);
    });
    m->probe("phy.fifo_crossings", [this] {
      std::uint64_t n = 0;
      for (net::Device* d : devices_)
        for (std::size_t p = 0; p < d->port_count(); ++p) n += d->port(p).fifo_crossings();
      return static_cast<double>(n);
    });
    m->probe("phy.fifo_extra_cycles", [this] {
      std::uint64_t n = 0;
      for (net::Device* d : devices_)
        for (std::size_t p = 0; p < d->port_count(); ++p)
          n += d->port(p).fifo_extra_cycles();
      return static_cast<double>(n);
    });

    if (dtp_ != nullptr) {
      // DTP: protocol counters summed over the live agents (an agent may be
      // torn down and re-attached mid-run, so sum through agent_of every
      // time rather than capturing Agent pointers).
      auto port_stat_sum = [this](std::uint64_t dtp::PortStats::* field) {
        std::uint64_t n = 0;
        for (net::Device* d : devices_) {
          const dtp::Agent* a = dtp_->agent_of(d);
          if (a == nullptr) continue;
          for (std::size_t p = 0; p < a->port_count(); ++p)
            n += a->port_logic(p).stats().*field;
        }
        return static_cast<double>(n);
      };
      m->probe("dtp.beacons_sent",
               [port_stat_sum] { return port_stat_sum(&dtp::PortStats::beacons_sent); });
      m->probe("dtp.beacons_received", [port_stat_sum] {
        return port_stat_sum(&dtp::PortStats::beacons_received);
      });
      m->probe("dtp.joins_sent",
               [port_stat_sum] { return port_stat_sum(&dtp::PortStats::joins_sent); });
      m->probe("dtp.joins_received",
               [port_stat_sum] { return port_stat_sum(&dtp::PortStats::joins_received); });
      m->probe("dtp.adjustments",
               [port_stat_sum] { return port_stat_sum(&dtp::PortStats::adjustments); });
      m->probe("dtp.state_transitions", [port_stat_sum] {
        return port_stat_sum(&dtp::PortStats::state_transitions);
      });
      m->probe("dtp.global_adjustments", [this] {
        std::uint64_t n = 0;
        for (net::Device* d : devices_)
          if (const dtp::Agent* a = dtp_->agent_of(d)) n += a->global_adjustments();
        return static_cast<double>(n);
      });
      m->probe("dtp.counter_resets", [this] {
        std::uint64_t n = 0;
        for (net::Device* d : devices_)
          if (const dtp::Agent* a = dtp_->agent_of(d)) n += a->counter_resets();
        return static_cast<double>(n);
      });
      m->probe("dtp.max_pairwise_offset_ticks",
               [this] { return dtp_->max_pairwise_offset_ticks(sim_.now()); });
      // Per-device offset vs the reference device (the Fig. 6 quantity).
      for (net::Device* d : devices_)
        m->probe("dtp.offset_ticks." + d->name(), [this, d] {
          const dtp::Agent* ref = dtp_->agent_of(devices_.front());
          const dtp::Agent* a = dtp_->agent_of(d);
          if (ref == nullptr || a == nullptr) return 0.0;
          return dtp::true_offset_fractional(*a, *ref, sim_.now());
        });
    }
  }

  sampler_ = std::make_unique<sim::PeriodicProcess>(
      sim_, interval_, [this] { take_snapshot(); }, sim::EventCategory::kProbe);
  sampler_->start();
}

void Session::take_snapshot() {
  const fs_t now = sim_.now();
  // Chaos restarts re-attach agents with fresh PortLogic instances; re-wire
  // lazily so a restarted node keeps its trace instrumentation.
  wire_ports();
  if (MetricsRegistry* m = hub_.metrics()) m->snapshot(now);
  if (TraceSink* tr = hub_.trace()) {
    if (dtp_ != nullptr) {
      const dtp::Agent* ref = dtp_->agent_of(devices_.front());
      for (std::size_t i = 0; i < devices_.size(); ++i) {
        const dtp::Agent* a = dtp_->agent_of(devices_[i]);
        const double off = (ref != nullptr && a != nullptr)
                               ? dtp::true_offset_fractional(*a, *ref, now)
                               : 0.0;
        tr->counter(tracks_[i], now, "offset_ticks." + devices_[i]->name(), off);
      }
      tr->counter(0, now, "max_pairwise_offset_ticks",
                  dtp_->max_pairwise_offset_ticks(now));
    }
  }
}

bool Session::finish(std::string* err) {
  if (!enabled() || finished_) return true;
  finished_ = true;
  if (sampler_) sampler_->stop();
  if (started_) {
    // Final sample at the run's end time, unless one just fired there.
    const fs_t now = sim_.now();
    MetricsRegistry* m = hub_.metrics();
    if (m == nullptr || m->snapshot_count() == 0 || m->snapshot_times().back() != now)
      take_snapshot();
  }
  // Wall-clock profile scopes become pid-2 complete events laid end to end,
  // so Perfetto shows the attribution next to the simulated-time tracks.
  if (TraceSink* tr = hub_.trace()) {
    const WallProfile& w = hub_.wall_profile();
    std::uint64_t at_ns = 0;
    for (std::size_t p = 0; p < kWallPhaseCount; ++p) {
      const auto phase = static_cast<WallPhase>(p);
      if (w.ns(phase) == 0) continue;
      tr->complete_wall(wall_phase_name(phase), at_ns, w.ns(phase));
      at_ns += w.ns(phase);
    }
  }
  return hub_.flush(err);
}

}  // namespace dtpsim::obs
