#include "obs/metrics.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/json.hpp"

namespace dtpsim::obs {

const char* metric_kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
    case MetricKind::kProbe: return "probe";
  }
  return "?";
}

MetricId MetricsRegistry::intern(const std::string& name, MetricKind kind) {
  for (MetricId i = 0; i < metrics_.size(); ++i)
    if (metrics_[i].name == name) return i;
  Metric m;
  m.name = name;
  m.kind = kind;
  m.points.reserve(snapshot_times_.capacity());
  metrics_.push_back(std::move(m));
  return static_cast<MetricId>(metrics_.size() - 1);
}

MetricId MetricsRegistry::counter(const std::string& name) {
  return intern(name, MetricKind::kCounter);
}

MetricId MetricsRegistry::gauge(const std::string& name) {
  return intern(name, MetricKind::kGauge);
}

MetricId MetricsRegistry::histogram(const std::string& name) {
  return intern(name, MetricKind::kHistogram);
}

MetricId MetricsRegistry::probe(const std::string& name, std::function<double()> fn) {
  const MetricId id = intern(name, MetricKind::kProbe);
  metrics_[id].probe = std::move(fn);
  return id;
}

void MetricsRegistry::add(MetricId id, double delta) { metrics_.at(id).value += delta; }

void MetricsRegistry::set(MetricId id, double v) { metrics_.at(id).value = v; }

void MetricsRegistry::observe(MetricId id, double sample) {
  Metric& m = metrics_.at(id);
  if (m.samples == 0) {
    m.min = m.max = sample;
  } else {
    if (sample < m.min) m.min = sample;
    if (sample > m.max) m.max = sample;
  }
  ++m.samples;
  m.sum += sample;
  m.value = sample;
}

void MetricsRegistry::before_snapshot(std::function<void()> fn) {
  pre_snapshot_.push_back(std::move(fn));
}

void MetricsRegistry::snapshot(fs_t t) {
  for (const auto& fn : pre_snapshot_) fn();
  snapshot_times_.push_back(t);
  for (Metric& m : metrics_) {
    double v = m.value;
    switch (m.kind) {
      case MetricKind::kProbe:
        v = m.probe ? m.probe() : 0.0;
        m.value = v;
        break;
      case MetricKind::kHistogram:
        v = static_cast<double>(m.samples);
        break;
      default:
        break;
    }
    m.points.push_back(Point{t, v});
  }
}

const MetricsRegistry::Metric* MetricsRegistry::find(const std::string& name) const {
  for (const Metric& m : metrics_)
    if (m.name == name) return &m;
  return nullptr;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\n";
  out += "  \"snapshot_count\": " + std::to_string(snapshot_times_.size()) + ",\n";
  out += "  \"metrics\": [\n";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    const Metric& m = metrics_[i];
    out += "    {\"name\": \"" + json_escape(m.name) + "\", \"kind\": \"";
    out += metric_kind_name(m.kind);
    out += "\"";
    if (m.kind == MetricKind::kHistogram) {
      out += ", \"samples\": " + std::to_string(m.samples);
      out += ", \"sum\": " + json_double(m.sum);
      if (m.samples > 0) {
        // An empty histogram has no min/max/mean — omitted, never faked as 0.
        out += ", \"min\": " + json_double(m.min);
        out += ", \"max\": " + json_double(m.max);
        out += ", \"mean\": " + json_double(m.sum / static_cast<double>(m.samples));
      }
    } else {
      out += ", \"value\": " + json_double(m.value);
    }
    out += ", \"points\": [";
    for (std::size_t p = 0; p < m.points.size(); ++p) {
      if (p != 0) out += ", ";
      out += "[" + std::to_string(m.points[p].t) + ", " + json_double(m.points[p].value) +
             "]";
    }
    out += "]}";
    out += i + 1 < metrics_.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool MetricsRegistry::write_json(const std::string& path, std::string* err) const {
  const std::string body = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (err) *err = "cannot open " + path + ": " + std::strerror(errno);
    return false;
  }
  const bool wrote = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool flushed = std::fflush(f) == 0 && std::ferror(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !flushed || !closed) {
    if (err) *err = "short write to " + path + ": " + std::strerror(errno);
    return false;
  }
  return true;
}

}  // namespace dtpsim::obs
