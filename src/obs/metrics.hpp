#pragma once

/// \file metrics.hpp
/// Named metrics with periodic simulated-time-stamped snapshots.
///
/// A `MetricsRegistry` holds a flat table of metrics addressed by dense
/// `MetricId`s, so per-sample recording is an array index plus one store:
///
///   * counter    — monotone accumulator, bumped by instrumented code;
///   * gauge      — last-value cell, set by instrumented code;
///   * histogram  — cheap streaming aggregate (count/sum/min/max) per sample;
///   * probe      — pull-model gauge: a callback evaluated at snapshot time.
///
/// `snapshot(t)` appends one `(t, value)` point to every metric's series.
/// Probes make the registry safe under the parallel engine without atomics:
/// instrumented state owned by worker shards is *read* only at snapshot
/// time, which the obs::Session drives from a global-affinity periodic
/// process — i.e. on the coordinator thread while every worker is parked.
/// Direct counter/gauge/histogram writes are therefore reserved for
/// coordinator-context code (chaos injection, probes, global events).
///
/// Snapshots are deterministic: timestamps are simulated femtoseconds and
/// values are rendered with round-trip precision, so a serial and a parallel
/// run of the same seed produce byte-identical metrics JSON.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/time_units.hpp"

namespace dtpsim::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram, kProbe };

const char* metric_kind_name(MetricKind k);

using MetricId = std::uint32_t;

class MetricsRegistry {
 public:
  struct Point {
    fs_t t = 0;
    double value = 0;
  };

  struct Metric {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    double value = 0;  ///< live cell (counter/gauge); last probe result
    // Histogram streaming aggregate. `min`/`max` are meaningless until
    // `samples > 0` — the JSON writer omits them for an empty histogram
    // rather than inventing a zero (see IntHistogram's empty-state rules).
    std::uint64_t samples = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    std::function<double()> probe;  ///< kProbe only
    std::vector<Point> points;      ///< one entry per snapshot
  };

  /// Register a metric (coordinator-only; names should be unique — a
  /// duplicate name returns the existing id so wiring code can be lazy).
  MetricId counter(const std::string& name);
  MetricId gauge(const std::string& name);
  MetricId histogram(const std::string& name);
  MetricId probe(const std::string& name, std::function<double()> fn);

  /// Record into a metric (coordinator context; see file comment).
  void add(MetricId id, double delta = 1.0);  ///< counter
  void set(MetricId id, double v);            ///< gauge
  void observe(MetricId id, double sample);   ///< histogram

  /// Run `fn` at the start of every snapshot, before any probe fires. This
  /// is the shared-aggregation hook: when several probes expose fields of
  /// one expensive aggregate (e.g. SimStats, whose collection walks every
  /// shard queue), the owner refreshes a cache here once and the probes read
  /// the cache — one O(shards) walk per snapshot instead of one per probe.
  void before_snapshot(std::function<void()> fn);

  /// Sample every metric (probes are evaluated here) and append one point
  /// per metric stamped with simulated time `t`.
  void snapshot(fs_t t);

  std::size_t size() const { return metrics_.size(); }
  std::size_t snapshot_count() const { return snapshot_times_.size(); }
  const std::vector<fs_t>& snapshot_times() const { return snapshot_times_; }
  const Metric& metric(MetricId id) const { return metrics_.at(id); }
  /// Lookup by name; nullptr if absent.
  const Metric* find(const std::string& name) const;

  /// Render the whole registry as a JSON document (see DESIGN.md §11).
  std::string to_json() const;

  /// Write `to_json()` to `path`. On failure returns false and describes the
  /// problem in `*err` (never silently succeeds — the BENCH writer audit).
  bool write_json(const std::string& path, std::string* err) const;

 private:
  MetricId intern(const std::string& name, MetricKind kind);

  std::vector<Metric> metrics_;
  std::vector<fs_t> snapshot_times_;
  std::vector<std::function<void()>> pre_snapshot_;  ///< see before_snapshot
};

}  // namespace dtpsim::obs
