#include "obs/hub.hpp"

namespace dtpsim::obs {

bool Hub::flush(std::string* err) {
  if (cfg_.metrics_enabled && !cfg_.metrics_path.empty() &&
      !metrics_.write_json(cfg_.metrics_path, err))
    return false;
  if (cfg_.trace_enabled && !cfg_.trace_path.empty() &&
      !trace_.write(cfg_.trace_path, err))
    return false;
  return true;
}

}  // namespace dtpsim::obs
