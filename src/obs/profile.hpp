#pragma once

/// \file profile.hpp
/// Wall-clock profiling scopes for the engine's hot phases (DESIGN.md §11).
///
/// A `WallProfile` is a fixed array of atomic nanosecond accumulators, one
/// per engine phase, fed by RAII `WallScope`s placed around the serial run
/// loop, parallel segments, per-epoch worker compute, and mailbox drains.
/// The accumulators are atomics because worker threads report their compute
/// and drain time concurrently; everything else about the profile is
/// read-only until the run finishes.
///
/// Zero-cost-when-disabled: every instrumentation point holds a
/// `WallProfile*` that is null unless an obs::Hub is attached, and a
/// `WallScope` constructed with a null profile performs no clock reads.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace dtpsim::obs {

/// Engine phase a wall-clock scope attributes time to.
enum class WallPhase : std::uint8_t {
  kSerialRun = 0,    ///< serial EventQueue::run inside Simulator::run_until
  kParallelSegment,  ///< coordinator: one run_segment hand-off (incl. waits)
  kWorkerCompute,    ///< worker: firing events inside an epoch
  kMailboxDrain,     ///< worker neighbor-wait + drain, coordinator drains
  kInstant,          ///< coordinator: process_instant at sync points
};
inline constexpr std::size_t kWallPhaseCount = 5;

inline const char* wall_phase_name(WallPhase p) {
  switch (p) {
    case WallPhase::kSerialRun: return "serial_run";
    case WallPhase::kParallelSegment: return "parallel_segment";
    case WallPhase::kWorkerCompute: return "worker_compute";
    case WallPhase::kMailboxDrain: return "mailbox_drain";
    case WallPhase::kInstant: return "instant_events";
  }
  return "?";
}

/// Per-phase wall-time accumulators. Thread-safe adds, relaxed ordering —
/// the totals are only read after the run joins its workers.
class WallProfile {
 public:
  void add(WallPhase p, std::uint64_t ns) {
    const auto i = static_cast<std::size_t>(p);
    ns_[i].fetch_add(ns, std::memory_order_relaxed);
    count_[i].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t ns(WallPhase p) const {
    return ns_[static_cast<std::size_t>(p)].load(std::memory_order_relaxed);
  }
  std::uint64_t count(WallPhase p) const {
    return count_[static_cast<std::size_t>(p)].load(std::memory_order_relaxed);
  }
  double seconds(WallPhase p) const { return static_cast<double>(ns(p)) / 1e9; }

 private:
  std::atomic<std::uint64_t> ns_[kWallPhaseCount] = {};
  std::atomic<std::uint64_t> count_[kWallPhaseCount] = {};
};

/// RAII scope: measures from construction to destruction and adds the span
/// to `profile` (no-op, including no clock reads, when profile is null).
class WallScope {
 public:
  WallScope(WallProfile* profile, WallPhase phase) : profile_(profile), phase_(phase) {
    if (profile_ != nullptr) t0_ = std::chrono::steady_clock::now();
  }
  ~WallScope() {
    if (profile_ == nullptr) return;
    const auto dt = std::chrono::steady_clock::now() - t0_;
    profile_->add(phase_,
                  static_cast<std::uint64_t>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
  }
  WallScope(const WallScope&) = delete;
  WallScope& operator=(const WallScope&) = delete;

 private:
  WallProfile* profile_;
  WallPhase phase_;
  std::chrono::steady_clock::time_point t0_{};
};

}  // namespace dtpsim::obs
