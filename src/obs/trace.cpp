#include "obs/trace.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/json.hpp"

namespace dtpsim::obs {

namespace {

/// Chrome trace timestamps are microseconds. Simulated time arrives in fs
/// (1e9 fs per µs), wall time in ns (1e3 ns per µs); both fit a double with
/// sub-ns precision over any run this repo performs.
std::string ts_us_from_fs(fs_t fs) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", static_cast<double>(fs) / 1e9);
  return buf;
}

std::string ts_us_from_ns(std::uint64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e3);
  return buf;
}

}  // namespace

std::uint32_t TraceSink::track(const std::string& label) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::uint32_t i = 0; i < track_labels_.size(); ++i)
    if (track_labels_[i] == label) return i + 1;  // tid 0 = the global track
  track_labels_.push_back(label);
  const auto tid = static_cast<std::uint32_t>(track_labels_.size());
  Event e;
  e.ph = 'M';
  e.tid = tid;
  e.name = "thread_name";
  e.args = "\"name\": \"" + json_escape(label) + "\"";
  push(std::move(e));
  return tid;
}

void TraceSink::instant(std::uint32_t track, fs_t t, const std::string& name,
                        const std::string& args_json) {
  Event e;
  e.ph = 'i';
  e.tid = track;
  e.ts_fs = t;
  e.name = name;
  e.args = args_json;
  std::lock_guard<std::mutex> lock(mu_);
  push(std::move(e));
}

void TraceSink::instant_global(fs_t t, const std::string& name,
                               const std::string& args_json) {
  Event e;
  e.ph = 'i';
  e.tid = 0;
  e.ts_fs = t;
  e.global_scope = true;
  e.name = name;
  e.args = args_json;
  std::lock_guard<std::mutex> lock(mu_);
  push(std::move(e));
}

void TraceSink::counter(std::uint32_t track, fs_t t, const std::string& name,
                        double value) {
  Event e;
  e.ph = 'C';
  e.tid = track;
  e.ts_fs = t;
  e.name = name;
  e.args = "\"value\": " + json_double(value);
  std::lock_guard<std::mutex> lock(mu_);
  push(std::move(e));
}

void TraceSink::complete_wall(const std::string& name, std::uint64_t start_ns,
                              std::uint64_t dur_ns) {
  Event e;
  e.ph = 'X';
  e.pid = kWallPid;
  e.tid = 1;
  e.ts_ns = start_ns;
  e.dur_ns = dur_ns;
  e.name = name;
  std::lock_guard<std::mutex> lock(mu_);
  push(std::move(e));
}

void TraceSink::push(Event e) {
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(e));
}

std::size_t TraceSink::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::uint64_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::size_t TraceSink::track_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return track_labels_.size();
}

void TraceSink::append_event_json(std::string& out, const Event& e) {
  out += "{\"name\": \"" + json_escape(e.name) + "\", \"ph\": \"";
  out += e.ph;
  out += "\", \"pid\": " + std::to_string(e.pid);
  out += ", \"tid\": " + std::to_string(e.tid);
  out += ", \"ts\": ";
  out += e.pid == kWallPid ? ts_us_from_ns(e.ts_ns) : ts_us_from_fs(e.ts_fs);
  if (e.ph == 'X') out += ", \"dur\": " + ts_us_from_ns(e.dur_ns);
  if (e.ph == 'i') out += std::string(", \"s\": \"") + (e.global_scope ? "g" : "t") + "\"";
  out += ", \"args\": {" + e.args + "}}";
}

std::string TraceSink::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Stable sort by (pid, ts): metadata first (ts 0), then time order; ties
  // keep emission order so equal-timestamp events stay readable.
  std::vector<const Event*> order;
  order.reserve(events_.size() + 2);
  for (const Event& e : events_) order.push_back(&e);
  std::stable_sort(order.begin(), order.end(), [](const Event* a, const Event* b) {
    if (a->ph == 'M' && b->ph != 'M') return true;
    if (a->ph != 'M' && b->ph == 'M') return false;
    if (a->pid != b->pid) return a->pid < b->pid;
    if (a->pid == kWallPid) return a->ts_ns < b->ts_ns;
    return a->ts_fs < b->ts_fs;
  });

  std::string out = "[\n";
  // Process names + the drop count as leading metadata.
  out += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
         "\"ts\": 0, \"args\": {\"name\": \"simulated time\"}},\n";
  out += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 2, \"tid\": 0, "
         "\"ts\": 0, \"args\": {\"name\": \"wall clock (profiling)\"}},\n";
  out += "{\"name\": \"trace_dropped_events\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
         "\"ts\": 0, \"args\": {\"count\": " + std::to_string(dropped_) + "}}";
  for (const Event* e : order) {
    out += ",\n";
    append_event_json(out, *e);
  }
  out += "\n]\n";
  return out;
}

bool TraceSink::write(const std::string& path, std::string* err) const {
  const std::string body = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (err) *err = "cannot open " + path + ": " + std::strerror(errno);
    return false;
  }
  const bool wrote = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool flushed = std::fflush(f) == 0 && std::ferror(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !flushed || !closed) {
    if (err) *err = "short write to " + path + ": " + std::strerror(errno);
    return false;
  }
  return true;
}

}  // namespace dtpsim::obs
