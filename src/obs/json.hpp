#pragma once

/// \file json.hpp
/// Tiny JSON output helpers shared by the metrics and trace writers.

#include <cstdio>
#include <string>
#include <string_view>

namespace dtpsim::obs {

/// Escape a string for inclusion inside a JSON string literal.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Render a double for JSON: round-trippable, and never one of the literals
/// JSON forbids (inf/nan collapse to 0, which no metric legitimately emits).
inline std::string json_double(double v) {
  if (!(v == v) || v > 1.7976931348623157e308 || v < -1.7976931348623157e308)
    return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace dtpsim::obs
