#pragma once

/// \file hub.hpp
/// The observability hub: one object the instrumented layers talk to.
///
/// A `Hub` bundles the three recorders — `MetricsRegistry`, `TraceSink`,
/// `WallProfile` — behind per-facility enable switches. Instrumented code
/// never owns a hub; it holds a nullable `Hub*` (null in every
/// non-instrumented run) and each accessor returns null when the facility is
/// off, so the hot-path cost of disabled observability is one pointer test:
///
///   if (auto* tr = hub_ ? hub_->trace() : nullptr) tr->instant(...);
///
/// The hub lives above the simulator (`sim::Simulator::set_obs`) but below
/// the wiring layer (`obs::Session`, which knows about devices and agents).

#include <string>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace dtpsim::obs {

struct HubConfig {
  bool metrics_enabled = true;
  bool trace_enabled = true;
  std::string metrics_path;  ///< empty = keep in memory (tests, benches)
  std::string trace_path;    ///< empty = keep in memory
};

class Hub {
 public:
  Hub() = default;
  explicit Hub(HubConfig cfg) : cfg_(std::move(cfg)) {}

  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  const HubConfig& config() const { return cfg_; }

  /// Facility accessors for instrumented code: null when disabled.
  MetricsRegistry* metrics() { return cfg_.metrics_enabled ? &metrics_ : nullptr; }
  TraceSink* trace() { return cfg_.trace_enabled ? &trace_ : nullptr; }
  WallProfile& wall() { return wall_; }

  /// Direct access regardless of the enable switches (tests, reporting).
  MetricsRegistry& metrics_registry() { return metrics_; }
  const MetricsRegistry& metrics_registry() const { return metrics_; }
  TraceSink& trace_sink() { return trace_; }
  const TraceSink& trace_sink() const { return trace_; }
  const WallProfile& wall_profile() const { return wall_; }

  /// Write every facility that has a configured path. Returns false and
  /// fills `*err` on the first I/O failure (nothing is silently dropped).
  bool flush(std::string* err = nullptr);

 private:
  HubConfig cfg_;
  MetricsRegistry metrics_;
  TraceSink trace_;
  WallProfile wall_;
};

}  // namespace dtpsim::obs
