#pragma once

/// \file session.hpp
/// Observability wiring for a live experiment (DESIGN.md §11).
///
/// `Session` owns the `obs::Hub` and knows about the layers above the
/// simulator: it interns one trace track per device, connects every DTP
/// port's instrumentation, registers pull-probes over the event core,
/// PHY counters and agent counters, and drives the periodic snapshot
/// process. The snapshot process is a *global-affinity* periodic event
/// (category kProbe): in parallel mode it fires at conservative sync points
/// on the coordinator thread while every worker is parked, so sampling
/// device state races nothing and a serial and a parallel run of the same
/// seed snapshot identical values at identical simulated times.
///
/// Lifetime: construct after the topology (and DTP layer, if any) exists,
/// `start(horizon)` before running, `finish()` after — that writes the
/// configured trace/metrics files. The destructor detaches the hub from the
/// simulator, so instrumented layers must not outlive the session's
/// simulator references.

#include <memory>
#include <string>
#include <vector>

#include "dtp/network.hpp"
#include "net/topology.hpp"
#include "obs/hub.hpp"
#include "sim/simulator.hpp"

namespace dtpsim::chaos {
class ChaosEngine;
}

namespace dtpsim::obs {

struct SessionConfig {
  std::string trace_path;    ///< empty + trace_in_memory=false → tracing off
  std::string metrics_path;  ///< empty + metrics_in_memory=false → metrics off
  fs_t metrics_interval = 0;  ///< snapshot cadence; 0 = horizon/256 (≥ 1 ns)
  bool trace_in_memory = false;    ///< enable tracing without a file (tests)
  bool metrics_in_memory = false;  ///< enable metrics without a file (tests)
};

class Session {
 public:
  /// \param net  finished topology (devices registered; must outlive this)
  /// \param dtp  DTP layer, or null for PTP/NTP runs (offset tracks off)
  Session(net::Network& net, dtp::DtpNetwork* dtp, SessionConfig cfg);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  Hub& hub() { return hub_; }
  bool enabled() const { return trace_on_ || metrics_on_; }
  fs_t snapshot_interval() const { return interval_; }

  /// Register probes and start the snapshot process; `horizon` (the planned
  /// run end) sizes the default snapshot interval.
  void start(fs_t horizon);

  /// Stop sampling, take a final snapshot, and write the configured files.
  /// Returns false + `*err` on I/O failure. Idempotent.
  bool finish(std::string* err = nullptr);

  /// The trace track interned for `dev` (0 if tracing is off).
  std::uint32_t device_track(const net::Device* dev) const;

 private:
  void wire_ports();  ///< (re)attach hub to every DTP port logic
  void take_snapshot();

  net::Network& net_;
  dtp::DtpNetwork* dtp_;
  sim::Simulator& sim_;
  SessionConfig cfg_;
  bool trace_on_ = false;
  bool metrics_on_ = false;
  Hub hub_;
  fs_t interval_ = 0;
  bool started_ = false;
  bool finished_ = false;
  std::vector<net::Device*> devices_;
  std::vector<std::uint32_t> tracks_;  ///< parallel to devices_
  std::unique_ptr<sim::PeriodicProcess> sampler_;
  sim::SimStats stats_cache_;  ///< refreshed once per snapshot (see start())
};

}  // namespace dtpsim::obs
