#pragma once

/// \file trace.hpp
/// Chrome `trace_event`-format sink, viewable in Perfetto / chrome://tracing.
///
/// Two synthetic processes organize the file:
///
///   pid 1 — simulated time. One named track (tid) per device, interned via
///           `track()`. Offset samples become counter events ("C"), protocol
///           and fault milestones become instant events ("i"): faults,
///           recoveries, sentinel violations, BEACON-JOINs, port state
///           transitions. Timestamps are simulated fs rendered as µs.
///   pid 2 — wall clock. Complete events ("X") from the engine's profiling
///           scopes (bench attribution). Timestamps are steady_clock ns
///           rendered as µs.
///
/// Emission is mutex-protected because worker threads report JOINs and state
/// transitions mid-epoch; events are buffered in memory and sorted by
/// timestamp at write time so the output is stable. The sink is bounded
/// (`kMaxEvents`) — past the cap events are counted as dropped rather than
/// growing without limit, and the drop count is recorded in the file's
/// metadata so a truncated trace is never mistaken for a complete one.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/time_units.hpp"

namespace dtpsim::obs {

class TraceSink {
 public:
  /// Simulated-time process / wall-clock process ids in the output.
  static constexpr int kSimPid = 1;
  static constexpr int kWallPid = 2;
  /// Event buffer bound (~4M events ≈ a few hundred MB of JSON).
  static constexpr std::size_t kMaxEvents = 1u << 22;

  /// Intern a named simulated-time track (one per device); emits the
  /// thread_name metadata record. Re-interning a label returns the same id.
  std::uint32_t track(const std::string& label);

  /// Instant event ("i", thread scope) on a device track at simulated `t`.
  void instant(std::uint32_t track, fs_t t, const std::string& name,
               const std::string& args_json = std::string());

  /// Instant event with global scope (fault injections, violations) — drawn
  /// across every track in Perfetto.
  void instant_global(fs_t t, const std::string& name,
                      const std::string& args_json = std::string());

  /// Counter sample ("C") at simulated `t`; `name` keys the counter track.
  void counter(std::uint32_t track, fs_t t, const std::string& name, double value);

  /// Wall-clock complete event ("X") under pid 2; times in steady_clock ns.
  void complete_wall(const std::string& name, std::uint64_t start_ns,
                     std::uint64_t dur_ns);

  std::size_t event_count() const;
  std::uint64_t dropped() const;
  std::size_t track_count() const;

  /// Render the whole trace as a JSON array (Chrome trace "JSON Array
  /// Format": loaders accept a bare array of event objects).
  std::string to_json() const;

  /// Write `to_json()` to `path`; false + `*err` on any I/O failure.
  bool write(const std::string& path, std::string* err) const;

 private:
  struct Event {
    char ph = 'i';          ///< i / C / X / M
    int pid = kSimPid;
    std::uint32_t tid = 0;
    fs_t ts_fs = 0;         ///< simulated time (pid 1)
    std::uint64_t ts_ns = 0;   ///< wall time (pid 2)
    std::uint64_t dur_ns = 0;  ///< X events
    bool global_scope = false;
    std::string name;
    std::string args;  ///< raw JSON object body, without braces; may be empty
  };

  void push(Event e);
  static void append_event_json(std::string& out, const Event& e);

  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::vector<std::string> track_labels_;
  std::uint64_t dropped_ = 0;
};

}  // namespace dtpsim::obs
