#include <gtest/gtest.h>

#include <iostream>
#include <memory>

#include "check/sentinel.hpp"
#include "dtp/network.hpp"
#include "dtp/watchdog.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

/// Unit tests for the HealthWatchdog escalation ladder (DESIGN.md §15) on the
/// smallest real network — two hosts on one cable. The counter-freeze seam
/// (chaos kFrozenCounter) is the fault injector of choice here because it
/// produces exactly one deterministic strike per fully-frozen window on the
/// frozen port itself, with no RNG in the detection path. The plausibility
/// gate is opened wide so the peer's staleness signal stays out of the way:
/// each test exercises one port's ladder in isolation.

namespace dtpsim {
namespace {

using namespace dtpsim::literals;

struct PairRun {
  sim::Simulator sim;
  net::Network net;
  net::ChainTopology chain;
  dtp::DtpNetwork dtp;
  std::unique_ptr<dtp::HealthWatchdog> watchdog;

  explicit PairRun(const dtp::WatchdogParams& wp, std::uint64_t seed = 7)
      : sim(seed), net(sim), chain(net::build_chain(net, 0)) {
    dtp = dtp::enable_dtp(net, dtp::DtpParams{});
    watchdog = std::make_unique<dtp::HealthWatchdog>(net, dtp, wp, seed);
  }

  dtp::PortLogic& left_port() { return dtp.agent_of(chain.left)->port_logic(0); }

  std::size_t left_watch() const {
    const std::size_t i = watchdog->find_watch("left", 0);
    EXPECT_NE(i, static_cast<std::size_t>(-1));
    return i;
  }
};

/// Watchdog parameters that isolate the counter-advance signal: the gate is
/// effectively off, backoff is short so a test covers several ladder rungs
/// in a few milliseconds of simulated time.
dtp::WatchdogParams ladder_params() {
  dtp::WatchdogParams wp;
  wp.plausible_delta_ticks = 1.0e9;  // staleness signal out of the picture
  wp.reinit_backoff = from_us(50);
  wp.probation_windows = 4;
  return wp;
}

TEST(Watchdog, SuspectClearsAfterOneCleanWindow) {
  PairRun run(ladder_params());
  // Freeze across exactly one full 50 us check window ([3.05, 3.10] ms):
  // the partial windows on either side see the counter advance.
  run.sim.run_until(3'040 * 1_us);
  run.left_port().set_counter_frozen(true);
  run.sim.run_until(3'110 * 1_us);
  run.left_port().set_counter_frozen(false);
  run.sim.run_until(3'500 * 1_us);

  const dtp::WatchdogPortStats& ws = run.watchdog->watch_stats(run.left_watch());
  EXPECT_EQ(ws.suspects, 1u) << "one stalled window is one suspicion";
  EXPECT_EQ(ws.quarantines, 0u)
      << "a single strike must never quarantine (suspect_strikes = 2)";
  EXPECT_EQ(run.watchdog->watch_health(run.left_watch()),
            dtp::PortHealth::kHealthy)
      << "the next clean window must clear a suspicion";
  EXPECT_GE(ws.first_suspected_at, 3'050 * 1_us);
  EXPECT_LT(ws.first_suspected_at, 3'160 * 1_us);
}

TEST(Watchdog, LadderEscalatesMonotonicallyAndRecovers) {
  PairRun run(ladder_params());
  check::Sentinel sentinel(run.net, run.dtp);
  sentinel.set_watchdog(run.watchdog.get());
  // The victim's offset is garbage while frozen; only the ladder invariants
  // are under test here, so blanket-blackout the offset monitors.
  sentinel.add_blackout(0, 8'000 * 1_us);

  run.sim.run_until(3'000 * 1_us);
  run.left_port().set_counter_frozen(true);
  run.sim.run_until(5'000 * 1_us);  // fault persists across several re-INITs
  run.left_port().set_counter_frozen(false);
  run.sim.run_until(8'000 * 1_us);

  const std::size_t w = run.left_watch();
  const dtp::WatchdogPortStats& ws = run.watchdog->watch_stats(w);
  EXPECT_GE(ws.quarantines, 2u) << "a persistent fault must relapse";
  EXPECT_GE(ws.reinits, 2u);
  EXPECT_GT(ws.last_backoff, run.watchdog->params().reinit_backoff)
      << "relapses must double the backoff, not retry at the base delay";
  EXPECT_EQ(ws.disables, 0u) << "the fault healed before the attempt ceiling";
  EXPECT_EQ(run.watchdog->watch_health(w), dtp::PortHealth::kHealthy)
      << "a full clean probation must end the episode";
  EXPECT_EQ(ws.attempts, 0)
      << "only a completed probation resets the attempt counter";
  EXPECT_EQ(run.left_port().state(), dtp::PortState::kSynced);

  // The sentinel watched every transition live: attempts never exceeded the
  // ceiling and the backoff grew strictly monotonically within the episode.
  for (const auto& v : sentinel.violations()) std::cout << v.to_string() << "\n";
  EXPECT_TRUE(sentinel.clean());
  EXPECT_GT(sentinel.stats().watchdog_checks, 0u);
}

TEST(Watchdog, DisableIsFinalAndFilesVerdict) {
  dtp::WatchdogParams wp = ladder_params();
  wp.max_reinit_attempts = 1;
  PairRun run(wp);
  check::Sentinel sentinel(run.net, run.dtp);
  sentinel.set_watchdog(run.watchdog.get());
  sentinel.add_blackout(0, 6'000 * 1_us);

  run.sim.run_until(3'000 * 1_us);
  run.left_port().set_counter_frozen(true);  // never healed
  run.sim.run_until(6'000 * 1_us);

  const std::size_t w = run.left_watch();
  const dtp::WatchdogPortStats& ws = run.watchdog->watch_stats(w);
  EXPECT_EQ(run.watchdog->watch_health(w), dtp::PortHealth::kDisabled);
  EXPECT_EQ(ws.disables, 1u);
  EXPECT_EQ(ws.reinits, 1u)
      << "a disabled port must never be re-INITed again";
  EXPECT_EQ(run.left_port().state(), dtp::PortState::kFaulty)
      << "a disabled port stays down";

  ASSERT_EQ(run.watchdog->verdicts().size(), 1u)
      << "giving up on a port must file an operator-visible verdict";
  const dtp::WatchdogVerdict& v = run.watchdog->verdicts()[0];
  EXPECT_EQ(v.device, "left");
  EXPECT_EQ(v.port, 0u);
  EXPECT_FALSE(v.reason.empty());

  for (const auto& viol : sentinel.violations())
    std::cout << viol.to_string() << "\n";
  EXPECT_TRUE(sentinel.clean()) << "disable-finality invariant violated";
}

TEST(Watchdog, HealthyRunStaysQuiet) {
  PairRun run(dtp::WatchdogParams{});
  run.sim.run_until(5'000 * 1_us);
  EXPECT_EQ(run.watchdog->total_suspects(), 0u)
      << "suspicion on a clean two-host link is a false positive";
  EXPECT_EQ(run.watchdog->total_quarantines(), 0u);
  for (std::size_t i = 0; i < run.watchdog->watch_count(); ++i)
    EXPECT_GT(run.watchdog->watch_stats(i).windows, 0u)
        << run.watchdog->watch_label(i) << " was never evaluated";
}

}  // namespace
}  // namespace dtpsim
