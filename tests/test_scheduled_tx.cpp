/// Time-slotted transmission over synchronized clocks (the paper's packet-
/// scheduling motivation).

#include "apps/scheduled_tx.hpp"

#include <gtest/gtest.h>

#include "dtp/daemon.hpp"
#include "dtp/network.hpp"
#include "net/topology.hpp"

namespace dtpsim::apps {
namespace {

using namespace dtpsim::literals;

struct SlottedFixture {
  sim::Simulator sim;
  net::Network net;
  net::StarTopology star;  // two senders + one receiver
  dtp::DtpNetwork dtp;
  std::vector<std::unique_ptr<dtp::Daemon>> daemons;

  explicit SlottedFixture(std::uint64_t seed) : sim(seed), net(sim), star(net::build_star(net, 3)) {
    dtp = dtp::enable_dtp(net);
    sim.run_until(2_ms);
    dtp::DaemonParams dp;
    dp.poll_period = from_ms(20);
    dp.sample_period = 0;
    const double tscs[] = {13.0, -21.0, 7.0};
    for (int i = 0; i < 3; ++i) {
      daemons.push_back(std::make_unique<dtp::Daemon>(
          sim, *dtp.agent_of(star.hosts[static_cast<std::size_t>(i)]), dp, tscs[i]));
      daemons.back()->start();
    }
    sim.run_until(300_ms);
  }

  ClockFn clock(int i) {
    return [this, i](fs_t t) { return daemons[static_cast<std::size_t>(i)]->get_time_ns(t); };
  }
};

TEST(ScheduledTx, SingleSenderHitsItsSlots) {
  SlottedFixture f(411);
  ScheduledSender sender(f.sim, *f.star.hosts[0], f.clock(0));
  const double start = f.daemons[0]->get_time_ns(f.sim.now()) + 1e6;
  net::Frame frame;
  frame.dst = f.star.hosts[2]->addr();
  frame.payload_bytes = 46;
  for (int i = 0; i < 200; ++i) sender.schedule(start + i * 10'000.0, frame);
  f.sim.run_until(f.sim.now() + 10_ms);
  ASSERT_EQ(sender.sent(), 200u);
  // Adherence error = clock-read jitter + serialization alignment: ~100 ns.
  EXPECT_LT(sender.adherence_series().stats().max_abs(), 500.0);
  EXPECT_GE(sender.adherence_series().stats().min(), 0.0)
      << "never transmit before the slot";
}

TEST(ScheduledTx, TwoSynchronizedSendersShareALinkWithoutQueueing) {
  // Senders 0 and 1 get interleaved 2 us slots toward host 2; if the
  // clocks agree (DTP), the fan-in link never queues more than one frame.
  SlottedFixture f(412);
  ScheduledSender s0(f.sim, *f.star.hosts[0], f.clock(0));
  ScheduledSender s1(f.sim, *f.star.hosts[1], f.clock(1));
  net::Frame frame;
  frame.dst = f.star.hosts[2]->addr();
  frame.payload_bytes = 1500;  // ~1.23 us serialization per frame
  const double start = f.daemons[0]->get_time_ns(f.sim.now()) + 1e6;
  for (int i = 0; i < 500; ++i) {
    s0.schedule(start + i * 4'000.0, frame);            // even 2 us slots
    s1.schedule(start + i * 4'000.0 + 2'000.0, frame);  // odd 2 us slots
  }
  std::vector<fs_t> arrivals;
  f.star.hosts[2]->on_hw_receive = [&](const net::Frame&, fs_t t) { arrivals.push_back(t); };
  f.sim.run_until(f.sim.now() + 10_ms);
  ASSERT_EQ(s0.sent(), 500u);
  ASSERT_EQ(s1.sent(), 500u);
  // The shared egress (switch toward host 2) held at most one extra frame,
  // and arrivals kept their 2 us slot spacing (no bunching).
  const auto& egress = f.star.hub->mac(2);
  EXPECT_LE(egress.stats().max_queue_bytes, 2 * 1522u)
      << "synchronized slots must not collide at the bottleneck";
  int bunched = 0;
  for (std::size_t i = 1; i < arrivals.size(); ++i)
    bunched += (arrivals[i] - arrivals[i - 1]) < 1.5_us;
  EXPECT_EQ(bunched, 0) << "every frame kept its slot";
}

TEST(ScheduledTx, UnsynchronizedSendersCollide) {
  // The same slot plan with free-running crystals at worst-case opposite
  // skews: the senders' ideas of "slot i" drift apart by 200 ppm, so after
  // enough slots the frames pile up at the shared egress.
  sim::Simulator sim(413);
  net::Network net(sim);
  auto& hub = net.add_switch("hub", 0.0);
  auto& fast = net.add_host("fast", +100.0);
  auto& slow = net.add_host("slow", -100.0);
  auto& sink = net.add_host("sink", 0.0);
  net.connect(hub, fast);
  net.connect(hub, slow);
  net.connect(hub, sink);
  std::vector<fs_t> arrivals;
  sink.on_hw_receive = [&](const net::Frame&, fs_t t) { arrivals.push_back(t); };
  sim.run_until(1_ms);

  auto raw_clock = [](net::Host& h) -> ClockFn {
    return [&h](fs_t t) { return static_cast<double>(h.oscillator().tick_at(t)) * 6.4; };
  };
  ScheduledSender s0(sim, fast, raw_clock(fast));
  ScheduledSender s1(sim, slow, raw_clock(slow));
  net::Frame frame;
  frame.dst = sink.addr();
  frame.payload_bytes = 1500;
  const double start = raw_clock(fast)(sim.now()) + 1e6;
  // 5000 slots * 4 us = 20 ms; 200 ppm over 20 ms = 4 us >> the 0.77 us
  // guard band: guaranteed collisions in the tail.
  for (int i = 0; i < 5000; ++i) {
    s0.schedule(start + i * 4'000.0, frame);
    s1.schedule(start + i * 4'000.0 + 2'000.0, frame);
  }
  sim.run_until(sim.now() + 40_ms);
  // As the 200 ppm drift eats the 0.77 us guard band, arrivals bunch up to
  // back-to-back serialization spacing — queueing delay the synchronized
  // plan never shows.
  int bunched = 0;
  for (std::size_t i = 1; i < arrivals.size(); ++i)
    bunched += (arrivals[i] - arrivals[i - 1]) < 1.5_us;
  EXPECT_GT(bunched, 100) << "unsynchronized slot clocks must collide";
}

TEST(ScheduledTx, NeverTransmitsEarly) {
  SlottedFixture f(414);
  ScheduledSender sender(f.sim, *f.star.hosts[0], f.clock(0));
  net::Frame frame;
  frame.dst = f.star.hosts[2]->addr();
  const double start = f.daemons[0]->get_time_ns(f.sim.now());
  for (int i = 1; i <= 100; ++i) sender.schedule(start + i * 50'000.0, frame);
  f.sim.run_until(f.sim.now() + 20_ms);
  ASSERT_EQ(sender.sent(), 100u);
  EXPECT_GE(sender.adherence_series().stats().min(), 0.0);
}

}  // namespace
}  // namespace dtpsim::apps
