/// Two-level (pod-aware) partitioning: determinism of the partitioner
/// itself, pod integrity under packing, the cross-pod-only cut property,
/// and — end to end — bit-exact RunDigest equality of a k=32 fat-tree pod
/// slice run serially and on 2/4 worker threads. The [parallel] label
/// routes this binary through the sanitize-threads preset (TSan); the
/// [scale] label through sanitize-scale (ASan+UBSan).

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "check/sentinel.hpp"
#include "dtp/network.hpp"
#include "net/topology.hpp"
#include "sim/partition.hpp"
#include "sim/simulator.hpp"

namespace dtpsim::sim {
namespace {

/// Synthetic datacenter-ish input: `n_pods` pods of `pod_nodes` nodes each
/// (chained by short intra-pod cables), plus two shared "core" nodes outside
/// any pod, each pod uplinked to both cores by long cables.
PartitionInput pod_graph(std::int32_t n_pods, std::int32_t pod_nodes,
                         fs_t intra_delay, fs_t uplink_delay) {
  PartitionInput in;
  in.nodes = n_pods * pod_nodes + 2;
  in.weights.assign(static_cast<std::size_t>(in.nodes), 1);
  in.pods.assign(static_cast<std::size_t>(in.nodes), -1);
  const std::int32_t core0 = n_pods * pod_nodes;
  const std::int32_t core1 = core0 + 1;
  for (std::int32_t p = 0; p < n_pods; ++p) {
    const std::int32_t base = p * pod_nodes;
    for (std::int32_t n = 0; n < pod_nodes; ++n)
      in.pods[static_cast<std::size_t>(base + n)] = p;
    for (std::int32_t n = 1; n < pod_nodes; ++n)
      in.edges.push_back({base + n - 1, base + n, intra_delay});
    in.edges.push_back({base, core0, uplink_delay});
    in.edges.push_back({base, core1, uplink_delay});
  }
  return in;
}

bool same_result(const PartitionResult& a, const PartitionResult& b) {
  return a.shard_of == b.shard_of && a.shards == b.shards &&
         a.lookahead == b.lookahead && a.cut_edges == b.cut_edges &&
         a.shard_weight == b.shard_weight && a.two_level == b.two_level &&
         a.pod_count == b.pod_count && a.pods_intact == b.pods_intact;
}

TEST(PartitionHierarchy, IdenticalInputIdenticalResult) {
  const PartitionInput in = pod_graph(8, 6, from_ns(50), from_us(1));
  for (std::int32_t k : {2, 3, 4}) {
    const PartitionResult a = partition_graph(in, k);
    const PartitionResult b = partition_graph(in, k);
    EXPECT_TRUE(same_result(a, b)) << "max_shards=" << k;
  }
}

TEST(PartitionHierarchy, PodsPackWholeAndOnlyUplinksAreCut) {
  const PartitionInput in = pod_graph(8, 6, from_ns(50), from_us(1));
  const PartitionResult r = partition_graph(in, 4);
  EXPECT_TRUE(r.two_level);
  EXPECT_EQ(r.pod_count, 8);
  EXPECT_TRUE(r.pods_intact);
  EXPECT_GE(r.shards, 2);
  // Every node of a pod lands on one shard.
  for (std::int32_t p = 0; p < 8; ++p)
    for (std::int32_t n = 1; n < 6; ++n)
      EXPECT_EQ(r.shard_of[static_cast<std::size_t>(p * 6 + n)],
                r.shard_of[static_cast<std::size_t>(p * 6)])
          << "pod " << p;
  // Cut cables are exclusively cross-pod, so the lookahead is the uplink
  // delay — the long cables pay for the epochs, the short ones never do.
  ASSERT_FALSE(r.cut_edges.empty());
  for (std::size_t i : r.cut_edges) {
    const auto& e = in.edges[i];
    EXPECT_NE(in.pods[static_cast<std::size_t>(e.a)],
              in.pods[static_cast<std::size_t>(e.b)]);
  }
  EXPECT_EQ(r.lookahead, from_us(1));
}

TEST(PartitionHierarchy, FlatModeUnchangedByEmptyPodVector) {
  PartitionInput in = pod_graph(8, 6, from_ns(50), from_us(1));
  const PartitionResult two = partition_graph(in, 4);
  in.pods.clear();
  const PartitionResult flat = partition_graph(in, 4);
  EXPECT_FALSE(flat.two_level);
  EXPECT_EQ(flat.pod_count, 0);
  EXPECT_TRUE(flat.pods_intact);  // vacuously: nothing to split
  // Flat contraction also collapses the short intra-pod cables here, so the
  // realized sharding agrees — the pod tags are a constraint, not a rewrite.
  EXPECT_EQ(flat.shard_of, two.shard_of);
}

TEST(PartitionHierarchy, SplitsAPodOnlyWhenBalanceDemandsIt) {
  // One giant pod (weight 60) and three tiny ones on two shards: the giant
  // pod exceeds the 1.25x balance cap, so the sweep must descend into it.
  PartitionInput in = pod_graph(4, 6, from_us(2), from_us(1));
  for (std::int32_t n = 0; n < 6; ++n)
    in.weights[static_cast<std::size_t>(n)] = 10;
  const PartitionResult r = partition_graph(in, 2);
  EXPECT_TRUE(r.two_level);
  EXPECT_FALSE(r.pods_intact);
  EXPECT_EQ(r.shards, 2);
}

/// End-to-end digest of everything a DTP fat-tree run observably produces:
/// per-agent offsets at fixed probe times, engine event totals, per-port
/// frame/control counters.
struct SliceRun {
  check::RunDigest digest;
  std::uint64_t executed = 0;
  std::int32_t shards = 0;
  bool synced = false;
};

SliceRun run_k32_slice(unsigned threads) {
  Simulator sim(77);
  net::NetworkParams np;
  // Metres of fiber make femtoseconds of lookahead: 1 us of propagation per
  // cable gives the partitioner a usable conservative window.
  np.cable.propagation_delay = from_us(1);
  net::Network net(sim, np);
  // A 2-pod slice of the k=32 fabric: 256 cores + 2x(16 agg + 16 edge) +
  // 64 hosts = 384 devices, pod-tagged by the builder.
  net::FatTreeParams fp;
  fp.k = 32;
  fp.hosts_per_edge = 2;
  fp.pods = 2;
  const net::FatTreeTopology topo = net::build_fat_tree(net, fp);
  dtp::DtpNetwork dtp = dtp::enable_dtp(net);
  if (threads > 1) sim.set_threads(threads);

  SliceRun r;
  r.shards = sim.shard_count();
  const fs_t t_end = from_us(400);
  while (sim.now() < t_end) {
    sim.run_until(sim.now() + from_us(50));
    for (std::size_t i = 1; i < dtp.size(); ++i)
      r.digest.mix(static_cast<std::uint64_t>(
          dtp::true_offset_units(dtp.agent(0), dtp.agent(i), sim.now())));
  }
  r.synced = dtp.all_synced();
  const SimStats st = sim.stats();
  r.executed = st.executed;
  r.digest.mix(st.scheduled);
  r.digest.mix(st.executed);
  r.digest.mix(st.cancelled);
  for (net::Device* d : net.devices())
    for (std::size_t p = 0; p < d->port_count(); ++p) {
      r.digest.mix(d->port(p).frames_sent());
      r.digest.mix(d->port(p).control_blocks_sent());
    }
  (void)topo;
  return r;
}

class K32SliceDeterminism : public ::testing::Test {
 protected:
  static const SliceRun& serial() {
    static const SliceRun r = run_k32_slice(1);
    return r;
  }
};

TEST_F(K32SliceDeterminism, SerialBaselineIsSane) {
  const SliceRun& s = serial();
  EXPECT_TRUE(s.synced);
  EXPECT_GT(s.executed, 100000u);
}

TEST_F(K32SliceDeterminism, TwoThreadsBitExact) {
  const SliceRun par = run_k32_slice(2);
  EXPECT_EQ(par.shards, 2);
  EXPECT_EQ(par.digest, serial().digest);
  EXPECT_EQ(par.executed, serial().executed);
}

TEST_F(K32SliceDeterminism, FourThreadsBitExact) {
  const SliceRun par = run_k32_slice(4);
  EXPECT_GE(par.shards, 2);
  EXPECT_EQ(par.digest, serial().digest);
  EXPECT_EQ(par.executed, serial().executed);
}

}  // namespace
}  // namespace dtpsim::sim
