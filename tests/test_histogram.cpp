#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include "common/table.hpp"

namespace dtpsim {
namespace {

TEST(Histogram, BinsSamplesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(9.999);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.1);
  h.add(1.0);  // hi edge is exclusive
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.5, 10);
  EXPECT_EQ(h.count(1), 10u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(Histogram, PdfSumsToOneWithoutOverflow) {
  Histogram h(0.0, 4.0, 4);
  for (double x : {0.5, 1.5, 1.6, 2.5}) h.add(x);
  double sum = 0;
  for (std::size_t i = 0; i < h.bins(); ++i) sum += h.pdf(i);
  EXPECT_DOUBLE_EQ(sum, 1.0);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(9), 9.5);
}

TEST(Histogram, BadArgsThrow) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 2.0, 2);
  for (int i = 0; i < 5; ++i) h.add(0.5);
  h.add(1.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_NE(out.find("5"), std::string::npos);
}

TEST(IntHistogram, OneBinPerInteger) {
  IntHistogram h(-4, 4);
  h.add(-4);
  h.add(0);
  h.add(0);
  h.add(4);
  EXPECT_EQ(h.count(-4), 1u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(IntHistogram, ClampsButTracksExtremes) {
  IntHistogram h(-2, 2);
  h.add(100);
  h.add(-50);
  EXPECT_EQ(h.count(2), 1u);    // clamped high
  EXPECT_EQ(h.count(-2), 1u);   // clamped low
  ASSERT_TRUE(h.max_seen().has_value());
  ASSERT_TRUE(h.min_seen().has_value());
  EXPECT_EQ(*h.max_seen(), 100);
  EXPECT_EQ(*h.min_seen(), -50);
}

TEST(IntHistogram, EmptyHistogramHasNoExtremes) {
  IntHistogram h(-2, 2);
  EXPECT_FALSE(h.min_seen().has_value());
  EXPECT_FALSE(h.max_seen().has_value());
  // ...and the empty state must be distinguishable from a real observed 0.
  h.add(0);
  ASSERT_TRUE(h.min_seen().has_value());
  EXPECT_EQ(*h.min_seen(), 0);
  EXPECT_EQ(*h.max_seen(), 0);
}

TEST(IntHistogram, EmptyPdfAndRenderAreSafe) {
  IntHistogram h(-2, 2);
  EXPECT_DOUBLE_EQ(h.pdf(0), 0.0);                    // no divide-by-zero
  EXPECT_NO_THROW({ (void)h.render(40, true); });
  EXPECT_TRUE(h.render(40, false).empty());
}

TEST(Histogram, EmptyPdfAndRenderAreSafe) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.pdf(0), 0.0);                    // no divide-by-zero
  EXPECT_NO_THROW({ (void)h.render(40, true); });
  EXPECT_TRUE(h.render(40, false).empty());
}

TEST(IntHistogram, PdfOfTickOffsets) {
  // The Fig. 6c shape: offsets concentrated on {-1, 0, 1, 2}.
  IntHistogram h(-4, 4);
  for (int i = 0; i < 30; ++i) h.add(0);
  for (int i = 0; i < 10; ++i) h.add(1);
  for (int i = 0; i < 10; ++i) h.add(-1);
  EXPECT_DOUBLE_EQ(h.pdf(0), 0.6);
  EXPECT_DOUBLE_EQ(h.pdf(1), 0.2);
  EXPECT_DOUBLE_EQ(h.pdf(3), 0.0);
}

TEST(IntHistogram, InvertedRangeThrows) {
  EXPECT_THROW(IntHistogram(3, 2), std::invalid_argument);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"proto", "precision"});
  t.add_row({"NTP", "us"});
  t.add_row({"DTP", "ns"});
  const std::string out = t.render();
  EXPECT_NE(out.find("proto"), std::string::npos);
  EXPECT_NE(out.find("NTP"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CellFormats) {
  EXPECT_EQ(Table::cell("%.1f ns", 25.6), "25.6 ns");
  EXPECT_EQ(Table::cell("%d", 42), "42");
}

}  // namespace
}  // namespace dtpsim
