#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "ptp/client.hpp"
#include "ptp/grandmaster.hpp"
#include "ptp/servo.hpp"
#include "ptp/transparent.hpp"
#include "sim/simulator.hpp"

namespace dtpsim::ptp {
namespace {

using namespace dtpsim::literals;

TEST(HardwareClockTest, FreeRunningFollowsOscillatorError) {
  phy::Oscillator osc(6'400'000, 100.0);  // +100 ppm fast
  HardwareClock clock(osc);
  // After 1 simulated second the clock should read ~1 s + 100 us.
  const double t_ns = clock.time_ns_at(from_sec(1));
  EXPECT_NEAR(t_ns, 1e9 + 1e5, 100.0);
}

TEST(HardwareClockTest, FreqAdjustCancelsOscillatorError) {
  phy::Oscillator osc(6'400'000, 100.0);
  HardwareClock clock(osc);
  clock.adj_freq(0, -99'990);  // -100 ppm (ppb), the servo's job
  const double t_ns = clock.time_ns_at(from_sec(1));
  EXPECT_NEAR(t_ns, 1e9, 1000.0);
}

TEST(HardwareClockTest, StepShiftsReading) {
  phy::Oscillator osc(6'400'000);
  HardwareClock clock(osc);
  clock.step(from_us(1), 500.0);
  EXPECT_NEAR(clock.time_ns_at(from_us(2)), 2000.0 + 500.0, 7.0);
}

TEST(HardwareClockTest, TimestampQuantized) {
  phy::Oscillator osc(6'400'000);
  HardwareClock clock(osc, from_ns(8));
  const double ts = clock.timestamp_ns(from_ns(100));
  EXPECT_EQ(ts, 96.0);  // floor(100/8)*8
}

TEST(HardwareClockTest, IdealClockIsTruth) {
  phy::Oscillator osc(6'400'000, 100.0);
  HardwareClock clock(osc, from_ns(8), /*ideal=*/true);
  EXPECT_DOUBLE_EQ(clock.time_ns_at(from_sec(1)), 1e9);
  clock.step(0, 1e9);  // ignored
  EXPECT_DOUBLE_EQ(clock.time_ns_at(from_sec(1)), 1e9);
}

TEST(HardwareClockTest, MonotoneAcrossAdjustments) {
  phy::Oscillator osc(6'400'000, -50.0);
  HardwareClock clock(osc);
  double last = 0;
  for (int i = 1; i < 1000; ++i) {
    const fs_t t = i * from_us(10);
    if (i % 100 == 0) clock.adj_freq(t, (i % 200) ? 500.0 : -500.0);
    const double v = clock.time_ns_at(t);
    EXPECT_GT(v, last);
    last = v;
  }
}

TEST(PiServoTest, FirstUpdateSteps) {
  PiServo servo;
  const auto action = servo.update(5000.0, 1.0);
  EXPECT_EQ(action.step_ns, -5000.0);
}

TEST(PiServoTest, ConvergesOnConstantRateError) {
  // Plant: clock with +50 ppm rate error vs its trim.
  PiServo servo;
  servo.update(0.0, 1.0);  // get past the initial step
  double phase_ns = 0.0;
  double trim_ppb = 0.0;
  const double rate_err_ppb = 50'000.0;
  double last_offsets = 1e12;
  for (int i = 0; i < 200; ++i) {
    phase_ns += (rate_err_ppb + trim_ppb) * 1.0;  // 1 s interval
    const auto action = servo.update(phase_ns, 1.0);
    if (action.step_ns != 0) phase_ns += action.step_ns;
    trim_ppb = action.freq_ppb;
    if (i > 150) last_offsets = std::min(last_offsets, std::abs(phase_ns));
  }
  EXPECT_LT(std::abs(phase_ns), 100.0);
  EXPECT_NEAR(trim_ppb, -rate_err_ppb, 2000.0);
}

TEST(PiServoTest, MedianRejectsOutlier) {
  ServoParams p;
  p.median_window = 5;
  p.step_threshold_ns = 1e9;  // never step
  PiServo servo(p);
  servo.update(0.0, 1.0);
  for (int i = 0; i < 5; ++i) servo.update(10.0, 1.0);
  const auto action = servo.update(100000.0, 1.0);  // spike
  EXPECT_NEAR(action.filtered_offset_ns, 10.0, 1e-9) << "median unmoved by one spike";
}

TEST(PiServoTest, ResetClearsState) {
  PiServo servo;
  servo.update(0.0, 1.0);
  servo.update(1000.0, 1.0);
  servo.reset();
  const auto action = servo.update(777.0, 1.0);
  EXPECT_EQ(action.step_ns, -777.0) << "first-update semantics restored";
}

// ---------------------------------------------------------------------------
// End-to-end PTP over the simulated network.

struct PtpFixture {
  sim::Simulator sim;
  net::Network net;
  net::StarTopology star;
  std::unique_ptr<Grandmaster> gm;
  std::vector<std::unique_ptr<PtpClient>> clients;
  std::unique_ptr<TransparentClockAdapter> tc;

  explicit PtpFixture(std::uint64_t seed, std::size_t n_clients, bool with_tc = true,
                      fs_t sync_interval = from_ms(250),
                      TransparentClockParams tc_params = {})
      : sim(seed), net(sim, make_params()), star(net::build_star(net, n_clients + 1)) {
    GrandmasterParams gp;
    gp.sync_interval = sync_interval;
    gp.announce_interval = sync_interval * 2;
    gm = std::make_unique<Grandmaster>(sim, *star.hosts[0], gp);
    PtpClientParams cp;
    cp.delay_req_interval = sync_interval * 3 / 4;
    for (std::size_t i = 1; i <= n_clients; ++i) {
      clients.push_back(
          std::make_unique<PtpClient>(sim, *star.hosts[i], gm->phc(), cp));
    }
    if (with_tc) tc = std::make_unique<TransparentClockAdapter>(*star.hub, tc_params);
    gm->start();
    for (auto& c : clients) c->start();
  }

  static net::NetworkParams make_params() {
    net::NetworkParams np;
    np.enable_drift = true;
    np.drift.step_ppm = 0.01;  // gentle thermal wander
    np.drift.update_interval = from_ms(10);
    return np;
  }

  /// Max |true offset| over all clients in the last portion of the run.
  double steady_state_error_ns(double tail_fraction = 0.5) const {
    double worst = 0;
    for (const auto& c : clients) {
      const auto& pts = c->true_series().points();
      for (std::size_t i = static_cast<std::size_t>(
               static_cast<double>(pts.size()) * (1 - tail_fraction));
           i < pts.size(); ++i)
        worst = std::max(worst, std::abs(pts[i].value));
    }
    return worst;
  }
};

TEST(PtpEndToEnd, ClientsLockToGrandmaster) {
  PtpFixture f(71, 3);
  f.sim.run_until(20_sec);
  for (auto& c : f.clients) {
    EXPECT_GT(c->syncs_completed(), 40u);
    EXPECT_EQ(c->master(), f.gm->addr());
    ASSERT_TRUE(c->path_delay_ns().has_value());
    EXPECT_GT(*c->path_delay_ns(), 0.0);
    EXPECT_LT(*c->path_delay_ns(), 10'000.0);
  }
}

TEST(PtpEndToEnd, IdlePrecisionIsSubMicrosecondButNotNanosecond) {
  PtpFixture f(72, 3);
  f.sim.run_until(30_sec);
  const double err = f.steady_state_error_ns();
  // The paper's Fig. 6d: idle PTP sits at hundreds of ns.
  EXPECT_LT(err, 2'000.0) << "idle PTP should be sub-2us";
  // Floor: one 6.4ns tick. Unbiased period quantization (no systematic
  // per-clock frequency offset) puts idle PTP in the low tens of ns here;
  // it still cannot be tick-perfect.
  EXPECT_GT(err, 6.4) << "...but cannot be implausibly perfect";
}

TEST(PtpEndToEnd, LoadDegradesPrecision) {
  // Fig. 6e/f mechanism: fan-in congestion (two senders into one receiver's
  // downlink) builds a standing queue that Sync messages share.
  PtpFixture idle(73, 3);
  idle.sim.run_until(12_sec);
  const double idle_err = idle.steady_state_error_ns(0.3);

  PtpFixture loaded(73, 3);
  loaded.sim.run_until(6_sec);  // let it lock first
  net::TrafficParams tp;
  tp.saturate = true;
  tp.frame_bytes = net::kMtuFrameBytes;
  loaded.net.add_traffic(*loaded.star.hosts[1], loaded.star.hosts[3]->addr(), tp).start();
  loaded.net.add_traffic(*loaded.star.hosts[2], loaded.star.hosts[3]->addr(), tp).start();
  loaded.sim.run_until(12_sec);
  const double loaded_err = loaded.steady_state_error_ns(0.3);

  EXPECT_GT(loaded_err, 4 * idle_err) << "congestion must visibly degrade PTP";
  EXPECT_GT(loaded_err, 5'000.0) << "microsecond-scale degradation expected";
}

TEST(PtpEndToEnd, IdealTransparentClockImprovesLoadedPrecision) {
  // A standard-conforming TC (unbounded correction capacity) must beat no
  // TC at all — the paper's point that a *correct* implementation should
  // not degrade under congestion.
  auto run = [](bool with_tc) {
    TransparentClockParams ideal;
    ideal.max_correctable_residence_ns = 1e12;
    PtpFixture f(74, 3, with_tc, from_ms(250), ideal);
    f.sim.run_until(6_sec);
    net::TrafficParams tp;
    tp.saturate = true;
    tp.frame_bytes = net::kMtuFrameBytes;
    // Fan-in congestion on host 3's downlink, which Sync messages share.
    f.net.add_traffic(*f.star.hosts[1], f.star.hosts[3]->addr(), tp).start();
    f.net.add_traffic(*f.star.hosts[2], f.star.hosts[3]->addr(), tp).start();
    f.sim.run_until(12_sec);
    return f.steady_state_error_ns(0.3);
  };
  const double with_tc = run(true);
  const double without_tc = run(false);
  EXPECT_LT(with_tc, without_tc)
      << "residence-time correction must remove some queueing error";
}

TEST(PtpEndToEnd, MeasuredOffsetsTrackTruthWhenIdle) {
  PtpFixture f(75, 1);
  f.sim.run_until(20_sec);
  // The servo's measured offsets should have settled near zero.
  const auto& pts = f.clients[0]->measured_series().points();
  ASSERT_GT(pts.size(), 20u);
  double tail_max = 0;
  for (std::size_t i = pts.size() / 2; i < pts.size(); ++i)
    tail_max = std::max(tail_max, std::abs(pts[i].value));
  EXPECT_LT(tail_max, 2'000.0);
}

TEST(PtpEndToEnd, GrandmasterCountsProtocolPackets) {
  PtpFixture f(76, 2);
  f.sim.run_until(10_sec);
  // Sync + FollowUp + Announce + DelayResps: PTP has real packet overhead —
  // the Table 1 contrast with DTP's zero.
  EXPECT_GT(f.gm->packets_sent(), 80u);
  EXPECT_GT(f.gm->delay_reqs_answered(), 20u);
  EXPECT_GT(f.clients[0]->delay_reqs_sent(), 20u);
}

TEST(PtpEndToEnd, BmcPrefersLowerPriority) {
  // Two grandmasters; clients must pick the lower priority value.
  sim::Simulator sim(77);
  net::Network net(sim, PtpFixture::make_params());
  auto star = net::build_star(net, 3);
  GrandmasterParams gp1;
  gp1.priority = 10;
  gp1.sync_interval = from_ms(250);
  GrandmasterParams gp2;
  gp2.priority = 5;  // better
  gp2.sync_interval = from_ms(250);
  Grandmaster gm1(sim, *star.hosts[0], gp1);
  Grandmaster gm2(sim, *star.hosts[1], gp2);
  PtpClient client(sim, *star.hosts[2], gm2.phc(), {});
  gm1.start();
  gm2.start();
  client.start();
  sim.run_until(5_sec);
  EXPECT_EQ(client.master(), gm2.addr());
}

TEST(TransparentClockTest, AccumulatesResidenceAcrossQueueing) {
  // Force queueing at the switch and verify Sync frames carry correction.
  sim::Simulator sim(78);
  net::Network net(sim);
  auto star = net::build_star(net, 3);
  TransparentClockParams ideal;
  ideal.max_correctable_residence_ns = 1e12;
  TransparentClockAdapter tc(*star.hub, ideal);
  double seen_correction = -1;
  star.hosts[1]->on_hw_receive = [&](const net::Frame& f, fs_t) {
    if (f.ethertype == kEtherTypePtp) seen_correction = f.correction_ns;
  };
  // Saturate the downlink toward host 1 so the PTP frame queues.
  net::TrafficParams tp;
  tp.saturate = true;
  net.add_traffic(*star.hosts[2], star.hosts[1]->addr(), tp).start();
  sim.run_until(10_ms);
  auto msg = std::make_shared<PtpMessage>();
  msg->type = PtpType::kSync;
  star.hosts[0]->send_hw(make_ptp_frame(star.hosts[0]->addr(),
                                        star.hosts[1]->addr(), msg));
  sim.run_until(50_ms);
  ASSERT_GE(seen_correction, 0.0) << "PTP frame must arrive";
  EXPECT_GT(seen_correction, 1'000.0) << "queueing residence must be recorded";
  EXPECT_GT(tc.corrections_applied(), 0u);
}

}  // namespace
}  // namespace dtpsim::ptp
