#include "common/time_units.hpp"

#include <gtest/gtest.h>

namespace dtpsim {
namespace {

using namespace dtpsim::literals;

TEST(TimeUnits, ConversionConstantsChain) {
  EXPECT_EQ(kFsPerPs, 1'000);
  EXPECT_EQ(kFsPerNs, kFsPerPs * 1'000);
  EXPECT_EQ(kFsPerUs, kFsPerNs * 1'000);
  EXPECT_EQ(kFsPerMs, kFsPerUs * 1'000);
  EXPECT_EQ(kFsPerSec, kFsPerMs * 1'000);
}

TEST(TimeUnits, FromHelpers) {
  EXPECT_EQ(from_ps(7), 7'000);
  EXPECT_EQ(from_ns(3), 3'000'000);
  EXPECT_EQ(from_us(2), 2'000'000'000);
  EXPECT_EQ(from_ms(1), 1'000'000'000'000);
  EXPECT_EQ(from_sec(1), 1'000'000'000'000'000);
}

TEST(TimeUnits, ToHelpers) {
  EXPECT_EQ(to_ns(6'400'000), 6);
  EXPECT_DOUBLE_EQ(to_ns_f(6'400'000), 6.4);
  EXPECT_DOUBLE_EQ(to_us_f(from_us(25)), 25.0);
  EXPECT_DOUBLE_EQ(to_sec_f(from_sec(2)), 2.0);
}

TEST(TimeUnits, IntegerLiterals) {
  EXPECT_EQ(640_fs, 640);
  EXPECT_EQ(5_ps, 5'000);
  EXPECT_EQ(50_ns, from_ns(50));
  EXPECT_EQ(32_us, from_us(32));
  EXPECT_EQ(10_ms, from_ms(10));
  EXPECT_EQ(1_sec, from_sec(1));
}

TEST(TimeUnits, FractionalLiterals) {
  EXPECT_EQ(6.4_ns, 6'400'000);
  EXPECT_EQ(25.6_ns, 25'600'000);
  EXPECT_EQ(0.5_us, from_ns(500));
  EXPECT_EQ(1.5_sec, from_ms(1500));
}

TEST(TimeUnits, TenGigTickIsExact) {
  // The whole repo hinges on 6.4 ns being exactly representable.
  EXPECT_EQ(6.4_ns * 10, 64_ns);
  EXPECT_EQ(from_sec(1) % 6'400'000, 0) << "a second is a whole number of 10G ticks";
}

TEST(TimeUnits, FormatDurationPicksUnits) {
  EXPECT_EQ(format_duration(640), "640fs");
  EXPECT_EQ(format_duration(from_ns(26)), "26ns");
  EXPECT_EQ(format_duration(from_us(13)), "13us");
  EXPECT_EQ(format_duration(from_ms(7)), "7ms");
  EXPECT_EQ(format_duration(from_sec(3)), "3s");
}

TEST(TimeUnits, FormatDurationNegative) {
  EXPECT_EQ(format_duration(-from_ns(50)), "-50ns");
}

TEST(TimeUnits, FormatDurationFractional) {
  EXPECT_EQ(format_duration(6'400'000), "6.4ns");
  EXPECT_EQ(format_duration(25'600'000), "25.6ns");
}

}  // namespace
}  // namespace dtpsim
