#include "phy/oscillator.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hpp"
#include "phy/drift.hpp"
#include "phy/rates.hpp"
#include "sim/simulator.hpp"

namespace dtpsim::phy {
namespace {

using namespace dtpsim::literals;

constexpr fs_t kT = 6'400'000;  // 10G period

TEST(PeriodFromPpm, NominalIsExact) {
  EXPECT_EQ(period_from_ppm(kT, 0.0), kT);
}

TEST(PeriodFromPpm, FastClockHasShorterPeriod) {
  EXPECT_LT(period_from_ppm(kT, 100.0), kT);
  EXPECT_GT(period_from_ppm(kT, -100.0), kT);
}

TEST(PeriodFromPpm, HundredPpmMagnitude) {
  // 100 ppm of 6.4 ns is 640 fs.
  EXPECT_NEAR(static_cast<double>(period_from_ppm(kT, 100.0)), kT - 640, 1.0);
  EXPECT_NEAR(static_cast<double>(period_from_ppm(kT, -100.0)), kT + 640, 1.0);
}

TEST(Oscillator, TickGridFromZeroPhase) {
  Oscillator osc(kT);
  EXPECT_EQ(osc.tick_at(0), 0);
  EXPECT_EQ(osc.tick_at(kT - 1), 0);
  EXPECT_EQ(osc.tick_at(kT), 1);
  EXPECT_EQ(osc.tick_at(10 * kT + 5), 10);
}

TEST(Oscillator, EdgeOfTick) {
  Oscillator osc(kT);
  EXPECT_EQ(osc.edge_of_tick(0), 0);
  EXPECT_EQ(osc.edge_of_tick(7), 7 * kT);
}

TEST(Oscillator, NegativePhaseStaggersGrid) {
  Oscillator osc(kT, 0.0, -1000);
  EXPECT_EQ(osc.edge_of_tick(0), -1000);
  EXPECT_EQ(osc.tick_at(0), 0);
  EXPECT_EQ(osc.tick_at(kT - 1001), 0);
  EXPECT_EQ(osc.tick_at(kT - 1000), 1);
}

TEST(Oscillator, NextEdgeAtOrAfter) {
  Oscillator osc(kT);
  EXPECT_EQ(osc.next_edge_at_or_after(0), 0);
  EXPECT_EQ(osc.next_edge_at_or_after(1), kT);
  EXPECT_EQ(osc.next_edge_at_or_after(kT), kT);
}

TEST(Oscillator, NextEdgeAfterIsStrict) {
  Oscillator osc(kT);
  EXPECT_EQ(osc.next_edge_after(0), kT);
  EXPECT_EQ(osc.next_edge_after(kT - 1), kT);
  EXPECT_EQ(osc.next_edge_after(kT), 2 * kT);
}

TEST(Oscillator, PpmRoundTrips) {
  for (double ppm : {-100.0, -37.5, 0.0, 12.0, 100.0}) {
    Oscillator osc(kT, ppm);
    EXPECT_NEAR(osc.ppm(), ppm, 0.16) << ppm;  // period quantized to 1 fs = 0.156 ppm
  }
}

TEST(Oscillator, PpmRoundTripIsExactOnPeriod) {
  // set_ppm_at(t, osc.ppm()) must be an exact no-op on the integer period:
  // drift re-anchoring on the reported ppm cannot accumulate quantization
  // bias. Swept across the full 802.3 envelope, fractional values included.
  for (double ppm = -100.0; ppm <= 100.0; ppm += 0.37) {
    Oscillator osc(kT, ppm);
    const fs_t period = osc.period();
    EXPECT_EQ(period_from_ppm(kT, osc.ppm()), period) << ppm;
    osc.set_ppm_at(3 * kT, osc.ppm());
    EXPECT_EQ(osc.period(), period) << ppm;
  }
}

TEST(Oscillator, UnchangedPeriodDoesNotReanchor) {
  Oscillator osc(kT);
  osc.set_period_at(5 * kT + 100, kT);
  // The whole past grid is still addressable: re-anchoring would have made
  // tick 0 a "before anchor" query.
  EXPECT_EQ(osc.edge_of_tick(0), 0);
  EXPECT_EQ(osc.tick_at(0), 0);
}

TEST(Oscillator, EdgeMathThrowsInsteadOfWrappingAtHorizon) {
  const fs_t horizon = std::numeric_limits<fs_t>::max();
  Oscillator osc(kT);
  // The last representable edge still computes exactly...
  const std::int64_t last_tick = horizon / kT;
  EXPECT_EQ(osc.edge_of_tick(last_tick), last_tick * kT);
  EXPECT_EQ(osc.next_edge_at_or_after(last_tick * kT), last_tick * kT);
  // ...and one step past it reports overflow instead of wrapping negative.
  EXPECT_THROW(osc.edge_of_tick(last_tick + 1), std::overflow_error);
  EXPECT_THROW(osc.next_edge_at_or_after(last_tick * kT + 1), std::overflow_error);
  EXPECT_THROW(osc.next_edge_after(last_tick * kT), std::overflow_error);
}

TEST(Oscillator, NegativePhaseNearHorizonThrows) {
  // anchor_time < 0 makes t - anchor_time overflow before the division; the
  // guard must catch it rather than divide a wrapped value.
  Oscillator osc(kT, 0.0, -1000);
  EXPECT_THROW(osc.tick_at(std::numeric_limits<fs_t>::max()), std::overflow_error);
  EXPECT_THROW(osc.next_edge_at_or_after(std::numeric_limits<fs_t>::max()),
               std::overflow_error);
}

TEST(Oscillator, QueriesBeforeAnchorThrow) {
  Oscillator osc(kT, 0.0, 5000);
  EXPECT_THROW(osc.tick_at(0), std::logic_error);
  EXPECT_THROW(osc.next_edge_at_or_after(4999), std::logic_error);
}

TEST(Oscillator, SetPeriodPreservesPastEdges) {
  Oscillator osc(kT);
  const fs_t edge5 = osc.edge_of_tick(5);
  osc.set_period_at(5 * kT + 100, kT + 640);
  EXPECT_EQ(osc.edge_of_tick(5), edge5);
  // Tick 6 now comes one (longer) period after tick 5.
  EXPECT_EQ(osc.edge_of_tick(6), edge5 + kT + 640);
}

TEST(Oscillator, TickIndicesMonotoneAcrossPeriodChanges) {
  Oscillator osc(kT);
  fs_t t = 0;
  std::int64_t last_tick = -1;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    t += static_cast<fs_t>(rng.uniform(3 * kT));
    const std::int64_t k = osc.tick_at(t);
    EXPECT_GE(k, last_tick);
    last_tick = k;
    if (i % 10 == 0) osc.set_ppm_at(t, rng.uniform_real(-100, 100));
  }
}

TEST(Oscillator, FastAndSlowDivergeAsExpected) {
  // +100 ppm vs -100 ppm: after 1 second the tick difference should be
  // about 200 ppm of 156.25 M ticks = ~31250 ticks.
  Oscillator fast(kT, 100.0), slow(kT, -100.0);
  const auto diff = fast.tick_at(from_sec(1)) - slow.tick_at(from_sec(1));
  EXPECT_NEAR(static_cast<double>(diff), 31250.0, 35.0);
}

TEST(Oscillator, InvalidConstructionThrows) {
  EXPECT_THROW(Oscillator(0), std::invalid_argument);
  Oscillator osc(kT);
  EXPECT_THROW(osc.set_period_at(0, 0), std::invalid_argument);
}

TEST(RateTable, MatchesPaperTable2) {
  EXPECT_EQ(rate_spec(LinkRate::k1G).period_fs, 8'000'000);
  EXPECT_EQ(rate_spec(LinkRate::k1G).counter_delta, 25u);
  EXPECT_EQ(rate_spec(LinkRate::k10G).period_fs, 6'400'000);
  EXPECT_EQ(rate_spec(LinkRate::k10G).counter_delta, 20u);
  EXPECT_EQ(rate_spec(LinkRate::k40G).period_fs, 1'600'000);
  EXPECT_EQ(rate_spec(LinkRate::k40G).counter_delta, 5u);
  EXPECT_EQ(rate_spec(LinkRate::k100G).period_fs, 640'000);
  EXPECT_EQ(rate_spec(LinkRate::k100G).counter_delta, 2u);
}

TEST(RateTable, DeltaTimesUnitEqualsPeriod) {
  // delta * 0.32 ns must equal the tick period at every rate (Section 7).
  for (const auto& spec : kRateTable) {
    EXPECT_EQ(static_cast<fs_t>(spec.counter_delta) * kCounterUnitFs, spec.period_fs)
        << spec.name;
  }
}

TEST(RateTable, BlocksForFrameMatchesPaperAccounting) {
  // Paper: MTU (1522 B) ~ 191 blocks; jumbo (~9 kB) ~ 1129 blocks.
  EXPECT_NEAR(static_cast<double>(blocks_for_frame(1522)), 191.0, 2.0);
  EXPECT_NEAR(static_cast<double>(blocks_for_frame(9018)), 1129.0, 4.0);
}

TEST(Drift, StaysWithinBound) {
  sim::Simulator sim(5);
  Oscillator osc(kT, 0.0);
  DriftParams dp;
  dp.bound_ppm = 50.0;
  dp.step_ppm = 20.0;
  dp.update_interval = 1_us;
  DriftProcess drift(sim, osc, dp, sim.fork_rng(1));
  drift.start();
  for (int i = 0; i < 1000; ++i) {
    sim.run_until(sim.now() + 1_us);
    ASSERT_LE(std::abs(osc.ppm()), 50.5);
  }
}

TEST(Drift, ActuallyMoves) {
  sim::Simulator sim(6);
  Oscillator osc(kT, 0.0);
  DriftParams dp;
  dp.step_ppm = 1.0;
  dp.update_interval = 1_us;
  DriftProcess drift(sim, osc, dp, sim.fork_rng(2));
  drift.start();
  sim.run_until(100_us);
  EXPECT_NE(osc.ppm(), 0.0);
}

}  // namespace
}  // namespace dtpsim::phy
