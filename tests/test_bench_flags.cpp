// The bench flag reader must never silently substitute a default for a
// malformed value: `--seconds=2,5` running the 0.5 s experiment and labeling
// the numbers "2.5 s" is exactly the kind of quiet data corruption the
// observability PR hunts. Malformed numerics are a hard exit(2).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../bench/bench_util.hpp"

using dtpsim::benchutil::Flags;

namespace {

Flags make_flags(std::vector<std::string> args) {
  static std::vector<std::string> storage;  // keeps c_str()s alive
  storage = std::move(args);
  storage.insert(storage.begin(), "bench_test");
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

}  // namespace

TEST(BenchFlags, StrictDoubleParserAcceptsFullMatches) {
  double v = 0;
  EXPECT_TRUE(Flags::parse_double_strict("2.5", &v));
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_TRUE(Flags::parse_double_strict("-0.125", &v));
  EXPECT_DOUBLE_EQ(v, -0.125);
  EXPECT_TRUE(Flags::parse_double_strict("1e3", &v));
  EXPECT_DOUBLE_EQ(v, 1000.0);
}

TEST(BenchFlags, StrictDoubleParserRejectsPartialMatches) {
  double v = 0;
  EXPECT_FALSE(Flags::parse_double_strict("2,5", &v));  // locale-style comma
  EXPECT_FALSE(Flags::parse_double_strict("2.5s", &v));  // trailing unit
  EXPECT_FALSE(Flags::parse_double_strict("abc", &v));
  EXPECT_FALSE(Flags::parse_double_strict("", &v));
}

TEST(BenchFlags, StrictIntParserAcceptsAndRejects) {
  long long v = 0;
  EXPECT_TRUE(Flags::parse_int_strict("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(Flags::parse_int_strict("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(Flags::parse_int_strict("1e3", &v));   // not integer syntax
  EXPECT_FALSE(Flags::parse_int_strict("12x", &v));
  EXPECT_FALSE(Flags::parse_int_strict("", &v));
}

TEST(BenchFlags, WellFormedValuesParseAndMissingFallsBack) {
  const Flags f = make_flags({"--seconds=2.5", "--events=1000"});
  EXPECT_DOUBLE_EQ(f.get_double("seconds", 9.0), 2.5);
  EXPECT_EQ(f.get_int("events", 5), 1000);
  // Absent flags still take the caller's default.
  EXPECT_DOUBLE_EQ(f.get_double("missing", 9.0), 9.0);
  EXPECT_EQ(f.get_int("missing", 5), 5);
}

TEST(BenchFlags, ParseDurationAcceptsEveryUnitSuffix) {
  using dtpsim::parse_duration;
  EXPECT_EQ(parse_duration("50ns"), dtpsim::from_ns(50));
  EXPECT_EQ(parse_duration("1.5us"), dtpsim::from_ns(1500));
  EXPECT_EQ(parse_duration("2ms"), dtpsim::from_ms(2));
  EXPECT_EQ(parse_duration("0.25s"), dtpsim::from_ms(250));
}

TEST(BenchFlags, ParseDurationIsStrict) {
  using dtpsim::parse_duration;
  // A bare number is ambiguous — seconds? ticks? — so the suffix is
  // mandatory, and the whole string must be consumed.
  EXPECT_THROW(parse_duration(""), std::invalid_argument);
  EXPECT_THROW(parse_duration("50"), std::invalid_argument);
  EXPECT_THROW(parse_duration("ms"), std::invalid_argument);
  EXPECT_THROW(parse_duration("50 ms"), std::invalid_argument);  // inner space
  EXPECT_THROW(parse_duration("50msx"), std::invalid_argument);
  EXPECT_THROW(parse_duration("50m"), std::invalid_argument);  // minutes? milli?
  // Durations configure timers and windows: zero and negative are nonsense.
  EXPECT_THROW(parse_duration("0ms"), std::invalid_argument);
  EXPECT_THROW(parse_duration("-3us"), std::invalid_argument);
}

TEST(BenchFlags, GetDurationParsesAndFallsBack) {
  const Flags f = make_flags({"--wd-check-period=50us"});
  EXPECT_EQ(f.get_duration("wd-check-period", dtpsim::from_ms(1)),
            dtpsim::from_us(50));
  EXPECT_EQ(f.get_duration("missing", dtpsim::from_ms(1)), dtpsim::from_ms(1));
}

TEST(BenchFlagsDeathTest, MalformedDurationExitsWithDiagnostic) {
  // "--wd-backoff=200" (no unit) silently meaning 200 fs — or falling back
  // to the default while the JSON row claims 200 — is the exact corruption
  // mode the strict parser exists to kill.
  const Flags f = make_flags({"--wd-backoff=200"});
  EXPECT_EXIT(f.get_duration("wd-backoff", dtpsim::from_us(200)),
              testing::ExitedWithCode(2),
              "--wd-backoff=200 is not a duration with a unit suffix");
}

TEST(BenchFlagsDeathTest, MalformedDoubleExitsWithDiagnostic) {
  const Flags f = make_flags({"--seconds=2,5"});
  EXPECT_EXIT(f.get_double("seconds", 9.0), testing::ExitedWithCode(2),
              "--seconds=2,5 is not a number");
}

TEST(BenchFlagsDeathTest, MalformedIntExitsWithDiagnostic) {
  const Flags f = make_flags({"--events=12x"});
  EXPECT_EXIT(f.get_int("events", 5), testing::ExitedWithCode(2),
              "--events=12x is not an integer");
}
