/// Section 5.4 extension — "Following The Fastest Clock" remedied: a
/// master-rooted spanning tree where children follow (and stall against)
/// their parent instead of the whole network chasing its fastest — possibly
/// out-of-spec — oscillator.

#include <gtest/gtest.h>

#include "dtp_test_util.hpp"

namespace dtpsim::dtp {
namespace {

using namespace dtpsim::literals;

DtpParams tree_params() {
  DtpParams p;
  p.mode = SyncMode::kMasterTree;
  return p;
}

struct MasterPair {
  sim::Simulator sim;
  net::Network net;
  net::Host* master;
  net::Host* child;
  std::unique_ptr<Agent> agent_master;
  std::unique_ptr<Agent> agent_child;

  MasterPair(std::uint64_t seed, double master_ppm, double child_ppm)
      : sim(seed), net(sim) {
    master = &net.add_host("master", master_ppm);
    child = &net.add_host("child", child_ppm);
    net.connect(*master, *child);
    agent_master = std::make_unique<Agent>(*master, tree_params());
    agent_child = std::make_unique<Agent>(*child, tree_params());
    agent_master->set_as_root();
    agent_child->set_parent_port(0);
  }
};

TEST(MasterTree, ChildFollowsSlowerMaster) {
  // The case kPeerMax cannot express: the master is SLOWER than the child,
  // and the network must follow the master anyway.
  MasterPair m(301, -100.0, +100.0);
  m.sim.run_until(2_ms);
  ASSERT_EQ(m.agent_child->port_logic(0).state(), PortState::kSynced);

  const fs_t t0 = m.sim.now();
  const auto gc0 = m.agent_child->global_at(t0).low64();
  const auto master_tick0 = m.master->oscillator().tick_at(t0);
  m.sim.run_until(t0 + 500_ms);
  const fs_t t1 = m.sim.now();
  const auto gc_gain = static_cast<double>(m.agent_child->global_at(t1).low64() - gc0);
  const auto master_gain =
      static_cast<double>(m.master->oscillator().tick_at(t1) - master_tick0);
  // The child's counter rate must match the *master's* oscillator (within
  // a hair), even though the child's crystal runs 200 ppm faster.
  EXPECT_NEAR(gc_gain / master_gain, 1.0, 2e-5);
}

TEST(MasterTree, CeilingStallsTheCounter) {
  // The stall mechanism itself: a capped TickCounter holds at the ceiling.
  TickCounter c(1, 0);
  c.set_cap(WideCounter(10));
  EXPECT_EQ(c.at_tick(5).low64(), 5u);
  EXPECT_FALSE(c.capped_at(5));
  EXPECT_EQ(c.at_tick(15).low64(), 10u) << "stalled at the ceiling";
  EXPECT_TRUE(c.capped_at(15));
  c.set_cap(WideCounter(20));  // parent advanced: ceiling raised
  EXPECT_EQ(c.at_tick(15).low64(), 15u);
  c.clear_cap();
  EXPECT_EQ(c.at_tick(50).low64(), 50u);
}

TEST(MasterTree, FastChildNeverOutrunsCeilingBudget) {
  // System-level stall evidence: over a long run the fast child's counter
  // gain equals the slow master's tick gain (its own crystal would have
  // produced ~200 ppm more) — only stalling can absorb the difference.
  MasterPair m(302, -100.0, +100.0);
  m.sim.run_until(2_ms);
  const fs_t t0 = m.sim.now();
  const auto child0 = m.agent_child->global_at(t0).low64();
  const auto child_tick0 = m.child->oscillator().tick_at(t0);
  m.sim.run_until(t0 + 500_ms);
  const fs_t t1 = m.sim.now();
  const auto counter_gain = static_cast<double>(m.agent_child->global_at(t1).low64() - child0);
  const auto crystal_gain =
      static_cast<double>(m.child->oscillator().tick_at(t1) - child_tick0);
  EXPECT_LT(counter_gain, crystal_gain - 10'000)
      << "the counter must have stalled away ~200 ppm worth of its own ticks";
}

TEST(MasterTree, OffsetBoundedLikePeerMax) {
  MasterPair m(303, -100.0, +100.0);
  m.sim.run_until(2_ms);
  double worst = 0;
  testutil::run_sampled(m.sim, 200_ms, 20_us, [&](fs_t t) {
    worst = std::max(
        worst, std::abs(true_offset_fractional(*m.agent_master, *m.agent_child, t)));
  });
  EXPECT_LE(worst, 6.0) << "parent-following keeps a comparable per-link bound";
}

TEST(MasterTree, MonotoneDespiteStalls) {
  MasterPair m(304, -80.0, +80.0);
  m.sim.run_until(2_ms);
  unsigned long long last = 0;
  testutil::run_sampled(m.sim, 100_ms, 5_us, [&](fs_t t) {
    const auto v = static_cast<unsigned long long>(m.agent_child->global_at(t).low64());
    EXPECT_GE(v, last);
    last = v;
  });
}

TEST(MasterTree, SurvivesOutOfSpecChildOscillator) {
  // Section 5.4's motivation: a +400 ppm rogue crystal. In kPeerMax the
  // whole network would follow it; in master-tree mode the rogue child
  // stalls down to the master's rate.
  MasterPair m(305, 0.0, +400.0);
  m.sim.run_until(2_ms);
  const fs_t t0 = m.sim.now();
  const auto gc0 = m.agent_master->global_at(t0).low64();
  const auto tick0 = m.master->oscillator().tick_at(t0);
  m.sim.run_until(t0 + 300_ms);
  const auto master_gain =
      static_cast<double>(m.master->oscillator().tick_at(m.sim.now()) - tick0);
  const auto gc_gain =
      static_cast<double>(m.agent_master->global_at(m.sim.now()).low64() - gc0);
  EXPECT_NEAR(gc_gain / master_gain, 1.0, 1e-6)
      << "the master's counter is untouched by the rogue child";
  double worst = 0;
  testutil::run_sampled(m.sim, m.sim.now() + 100_ms, 20_us, [&](fs_t t) {
    worst = std::max(
        worst, std::abs(true_offset_fractional(*m.agent_master, *m.agent_child, t)));
  });
  EXPECT_LE(worst, 8.0) << "even the rogue stays within a couple ticks of the master";
}

TEST(MasterTree, PeerMaxFollowsRogueForContrast) {
  // The same rogue under the default mode: the *network* speeds up.
  testutil::TwoNodes n(306, 0.0, +400.0);
  n.sim.run_until(2_ms);
  const fs_t t0 = n.sim.now();
  const auto gc0 = n.agent_a->global_at(t0).low64();
  const auto tick0 = n.a->oscillator().tick_at(t0);
  n.sim.run_until(t0 + 300_ms);
  const auto nominal_gain =
      static_cast<double>(n.a->oscillator().tick_at(n.sim.now()) - tick0);
  const auto gc_gain = static_cast<double>(n.agent_a->global_at(n.sim.now()).low64() - gc0);
  EXPECT_GT(gc_gain / nominal_gain, 1.0 + 300e-6)
      << "kPeerMax drags the honest node up to the rogue's +400 ppm rate";
}

TEST(MasterTree, BfsBuilderCoversChain) {
  sim::Simulator sim(307);
  net::Network net(sim);
  auto chain = net::build_chain(net, 3);
  DtpNetwork dtp = enable_dtp(net, tree_params());
  const std::size_t reached = configure_master_tree(dtp, *chain.left);
  EXPECT_EQ(reached, dtp.size());
  EXPECT_TRUE(dtp.agent_of(chain.left)->is_root());
  EXPECT_TRUE(dtp.agent_of(chain.right)->parent_port().has_value());
  sim.run_until(5_ms);
  double worst = 0;
  testutil::run_sampled(sim, 100_ms, 50_us, [&](fs_t t) {
    worst = std::max(worst, dtp.max_pairwise_offset_ticks(t));
  });
  // 4 hops of parent-following; allow the same per-hop budget as peer-max.
  EXPECT_LE(worst, 4.0 * 6.0);
}

TEST(MasterTree, ApiGuards) {
  testutil::TwoNodes n(308, 0.0, 0.0);  // default kPeerMax agents
  EXPECT_THROW(n.agent_a->set_parent_port(0), std::logic_error);
  EXPECT_THROW(n.agent_a->set_as_root(), std::logic_error);

  sim::Simulator sim(309);
  net::Network net(sim);
  auto& a = net.add_host("a");
  auto& b = net.add_host("b");
  net.connect(a, b);
  Agent agent(a, tree_params());
  EXPECT_THROW(agent.set_parent_port(5), std::out_of_range);
}

}  // namespace
}  // namespace dtpsim::dtp
