/// Bit-exact equivalence of the analytic tick-bridging engine (DESIGN.md §12):
/// running with EngineMode::kBridged — beacon timers, control-block arrivals
/// and CDC visibility events replaced by analytic bridge steps, quiet spans
/// fused without touching the heap — must reproduce the exact engine's runs
/// event-for-event: offset traces, event counts per category, per-port
/// frame/control counts, agent adjustment counters, and chaos verdicts.
/// The [bridge] label routes this binary through the sanitize-bridge preset.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "chaos/engine.hpp"
#include "chaos/plan.hpp"
#include "dtp/network.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace dtpsim::sim {
namespace {

using namespace dtpsim::literals;

/// Everything a run observably produces. Two runs are "the same simulation"
/// iff these compare equal; `fused` is engine-private bookkeeping and is
/// deliberately excluded (it is how the modes are *allowed* to differ).
struct RunResult {
  // offsets[sample][agent] = true counter offset vs agent 0, in units.
  std::vector<std::vector<long long>> offsets;
  std::uint64_t scheduled = 0;
  std::uint64_t executed = 0;
  std::uint64_t cancelled = 0;
  std::vector<std::uint64_t> by_category;
  std::vector<std::uint64_t> frames_sent;
  std::vector<std::uint64_t> control_sent;
  std::vector<std::uint64_t> fifo_crossings;
  std::vector<std::uint64_t> fifo_extra;
  std::vector<std::uint64_t> adjustments;
  std::vector<std::uint64_t> resets;
  // (class, converged, reconverged_at) per chaos probe, in report order.
  std::vector<std::tuple<std::string, bool, fs_t>> verdicts;

  bool operator==(const RunResult&) const = default;
};

struct RunConfig {
  Simulator::EngineMode mode = Simulator::EngineMode::kExact;
  unsigned threads = 1;
  bool traffic = true;  ///< MTU saturation pairs (forces exact fallbacks)
  bool chaos = true;    ///< link flap + BER burst mid-run
};

RunResult run_fig5(const RunConfig& cfg, std::uint64_t* fused_out = nullptr) {
  Simulator sim(42);
  sim.set_engine(cfg.mode);
  net::NetworkParams np;
  np.cable.propagation_delay = from_us(1);
  net::Network net(sim, np);
  net::PaperTreeTopology topo = net::build_paper_tree(net);
  dtp::DtpNetwork dtp = dtp::enable_dtp(net);

  if (cfg.traffic) {
    // Frames keep the line busy: every beacon that lands on a busy or queued
    // slot must take the exact fallback path, and arrivals interleave with
    // bridged steps at shared instants.
    net::TrafficParams tp;
    tp.saturate = true;
    tp.frame_bytes = 1518;
    net.add_traffic(*topo.leaves[0], topo.leaves[5]->addr(), tp).start();
    net.add_traffic(*topo.leaves[3], topo.leaves[7]->addr(), tp).start();
  }

  chaos::ChaosEngine chaos_eng(net, dtp, {});
  if (cfg.chaos) {
    // Faults land inside bridged quiet spans: the flap cancels pending
    // bridge steps (purge + bridge_cancel paths), the BER burst corrupts
    // control blocks that travel as bridge arrivals.
    chaos::FaultPlan plan;
    plan.add(chaos::FaultSpec::link_flap(*topo.aggs[0], *topo.leaves[0],
                                         from_us(900), from_us(150)));
    plan.add(chaos::FaultSpec::ber_burst(*topo.root, *topo.aggs[1],
                                         from_us(1200), from_us(200), 1e-5));
    chaos_eng.schedule(plan);
  }

  if (cfg.threads > 1) sim.set_threads(cfg.threads);

  RunResult r;
  const fs_t t_end = cfg.traffic ? from_ms(3) : from_ms(6);
  while (sim.now() < t_end) {
    sim.run_until(sim.now() + from_us(100));
    std::vector<long long> row;
    for (std::size_t i = 1; i < dtp.size(); ++i)
      row.push_back(static_cast<long long>(
          dtp::true_offset_units(dtp.agent(0), dtp.agent(i), sim.now())));
    r.offsets.push_back(std::move(row));
  }

  const SimStats st = sim.stats();
  r.scheduled = st.scheduled;
  r.executed = st.executed;
  r.cancelled = st.cancelled;
  r.by_category.assign(st.executed_by_category,
                       st.executed_by_category + kEventCategoryCount);
  for (net::Device* d : net.devices()) {
    for (std::size_t p = 0; p < d->port_count(); ++p) {
      r.frames_sent.push_back(d->port(p).frames_sent());
      r.control_sent.push_back(d->port(p).control_blocks_sent());
      r.fifo_crossings.push_back(d->port(p).fifo_crossings());
      r.fifo_extra.push_back(d->port(p).fifo_extra_cycles());
    }
  }
  for (std::size_t i = 0; i < dtp.size(); ++i) {
    r.adjustments.push_back(dtp.agent(i).global_adjustments());
    r.resets.push_back(dtp.agent(i).counter_resets());
  }
  for (const chaos::ProbeResult& pr : chaos_eng.report().results())
    r.verdicts.emplace_back(pr.fault_class, pr.converged, pr.reconverged_at);
  if (fused_out != nullptr) *fused_out = st.fused;
  return r;
}

class EngineBridge : public ::testing::Test {
 protected:
  static const RunResult& exact_serial() {
    static const RunResult r = run_fig5({});
    return r;
  }
};

TEST_F(EngineBridge, ExactBaselineIsSaneAndNeverFuses) {
  std::uint64_t fused = ~0ull;
  const RunResult s = run_fig5({}, &fused);
  ASSERT_FALSE(s.offsets.empty());
  EXPECT_GT(s.executed, 100000u);
  EXPECT_EQ(s.verdicts.size(), 2u);
  EXPECT_EQ(fused, 0u) << "exact mode must never take the fused path";
  EXPECT_EQ(s, exact_serial());
}

TEST_F(EngineBridge, BridgedSerialMatchesExact) {
  RunConfig cfg;
  cfg.mode = Simulator::EngineMode::kBridged;
  std::uint64_t fused = 0;
  const RunResult b = run_fig5(cfg, &fused);
  EXPECT_EQ(b, exact_serial());
  EXPECT_GT(fused, 0u) << "bridge never engaged; test is vacuous";
}

TEST_F(EngineBridge, BridgedTwoThreadsMatchesExactSerial) {
  RunConfig cfg;
  cfg.mode = Simulator::EngineMode::kBridged;
  cfg.threads = 2;
  EXPECT_EQ(run_fig5(cfg), exact_serial());
}

TEST_F(EngineBridge, BridgedFourThreadsMatchesExactSerial) {
  RunConfig cfg;
  cfg.mode = Simulator::EngineMode::kBridged;
  cfg.threads = 4;
  EXPECT_EQ(run_fig5(cfg), exact_serial());
}

TEST_F(EngineBridge, QuietRunFusesMostControlTraffic) {
  // No frame traffic: after INIT the run is beacons + CDC crossings, the
  // workload the bridge exists for. Digest equality still required, and the
  // majority of executed events must have skipped the heap.
  RunConfig exact;
  exact.traffic = false;
  RunConfig bridged = exact;
  bridged.mode = Simulator::EngineMode::kBridged;
  std::uint64_t fused = 0;
  const RunResult b = run_fig5(bridged, &fused);
  const RunResult e = run_fig5(exact);
  EXPECT_EQ(b, e);
  EXPECT_GT(fused, b.executed / 4)
      << "quiet workload should fuse a large fraction of events";
}

TEST_F(EngineBridge, SetThreadsWithPendingBridgeStepsThrows) {
  // Sharding moves events between queues; bridge tokens name a queue, so
  // re-sharding mid-flight is refused rather than silently misrouted.
  Simulator sim(7);
  sim.set_engine(Simulator::EngineMode::kBridged);
  net::NetworkParams np;
  np.cable.propagation_delay = from_us(1);
  net::Network net(sim, np);
  net::PaperTreeTopology topo = net::build_paper_tree(net);
  dtp::DtpNetwork dtp = dtp::enable_dtp(net);
  sim.run_until(from_ms(1));  // ports sync; beacon bridge steps now pending
  ASSERT_TRUE(dtp.all_synced());
  EXPECT_THROW(sim.set_threads(2), std::logic_error);
}

}  // namespace
}  // namespace dtpsim::sim
