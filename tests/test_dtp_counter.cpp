#include "dtp/counter.hpp"

#include <gtest/gtest.h>

#include "dtp/fault.hpp"

namespace dtpsim::dtp {
namespace {

using namespace dtpsim::literals;

TEST(TickCounter, AdvancesDeltaPerTick) {
  TickCounter c(1, 0);
  EXPECT_EQ(c.at_tick(0).low64(), 0u);
  EXPECT_EQ(c.at_tick(100).low64(), 100u);
}

TEST(TickCounter, MultiRateDelta) {
  TickCounter c(20, 0);  // 10G in 0.32 ns units
  EXPECT_EQ(c.at_tick(5).low64(), 100u);
}

TEST(TickCounter, ZeroDeltaRejected) {
  EXPECT_THROW(TickCounter(0, 0), std::invalid_argument);
}

TEST(TickCounter, QueryBeforeAnchorThrows) {
  TickCounter c(1, 50);
  EXPECT_THROW(c.at_tick(49), std::logic_error);
  EXPECT_EQ(c.at_tick(50).low64(), 0u);
}

TEST(TickCounter, FastForwardMovesUp) {
  TickCounter c(1, 0);
  const auto jump = c.fast_forward(10, WideCounter(15));  // counter was 10
  EXPECT_EQ(static_cast<std::uint64_t>(jump), 5u);
  EXPECT_EQ(c.at_tick(10).low64(), 15u);
  EXPECT_EQ(c.at_tick(12).low64(), 17u);
}

TEST(TickCounter, FastForwardNeverMovesDown) {
  TickCounter c(1, 0);
  const auto jump = c.fast_forward(10, WideCounter(3));  // counter was 10
  EXPECT_EQ(static_cast<std::uint64_t>(jump), 0u);
  EXPECT_EQ(c.at_tick(10).low64(), 10u) << "max() semantics: no regression";
}

TEST(TickCounter, FastForwardReanchors) {
  TickCounter c(1, 0);
  c.fast_forward(10, WideCounter(5));  // no-op value-wise
  EXPECT_EQ(c.anchor_tick(), 10);
  EXPECT_THROW(c.at_tick(9), std::logic_error);
}

TEST(TickCounter, MonotoneUnderMixedOperations) {
  TickCounter c(1, 0);
  std::uint64_t last = 0;
  for (std::int64_t k = 1; k < 100; ++k) {
    if (k % 7 == 0) c.fast_forward(k, c.at_tick(k).plus(2));
    if (k % 11 == 0) c.fast_forward(k, WideCounter(1));  // stale small value
    const auto v = c.at_tick(k).low64();
    EXPECT_GE(v, last);
    last = v;
  }
}

TEST(TickCounter, SetOverridesValue) {
  TickCounter c(1, 0);
  c.set(5, WideCounter(1000));
  EXPECT_EQ(c.at_tick(5).low64(), 1000u);
  EXPECT_EQ(c.at_tick(7).low64(), 1002u);
}

TEST(TickCounter, LargeTickGapsDoNotOverflow) {
  TickCounter c(20, 0);
  // A simulated hour at 10G: 5.6e11 ticks * 20 units.
  const std::int64_t k = 562'500'000'000LL;
  EXPECT_EQ(static_cast<std::uint64_t>(c.at_tick(k).value() & ~0ULL),
            static_cast<std::uint64_t>(k) * 20u);
}

TEST(JumpDetector, IgnoresSmallAdjustments) {
  JumpDetector d(4, 3, from_ms(1));
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(d.record(i * from_us(1), 2));
  EXPECT_FALSE(d.tripped());
  EXPECT_EQ(d.suspicious_in_window(), 0u);
}

TEST(JumpDetector, TripsOnBurstOfLargeJumps) {
  JumpDetector d(4, 3, from_ms(1));
  EXPECT_FALSE(d.record(from_us(1), 10));
  EXPECT_FALSE(d.record(from_us(2), 10));
  EXPECT_FALSE(d.record(from_us(3), 10));
  EXPECT_TRUE(d.record(from_us(4), 10));  // 4th within 1 ms > max of 3
  EXPECT_TRUE(d.tripped());
}

TEST(JumpDetector, WindowForgetsOldJumps) {
  JumpDetector d(4, 2, from_ms(1));
  EXPECT_FALSE(d.record(0, 10));
  EXPECT_FALSE(d.record(from_us(1), 10));
  // Two more, but far in the future: the first two have aged out.
  EXPECT_FALSE(d.record(from_ms(10), 10));
  EXPECT_FALSE(d.record(from_ms(10) + from_us(1), 10));
  EXPECT_FALSE(d.tripped());
}

TEST(JumpDetector, StaysTrippedUntilReset) {
  JumpDetector d(0, 0, from_ms(1));
  EXPECT_TRUE(d.record(0, 1));
  EXPECT_TRUE(d.record(from_sec(1), 0));  // even benign events report faulty
  d.reset();
  EXPECT_FALSE(d.tripped());
}

}  // namespace
}  // namespace dtpsim::dtp
