/// Determinism guarantees of the event engine (DESIGN.md "Event-loop
/// internals"): a (workload, seed) pair fully determines the event trace —
/// identical timestamps AND identical ordering — regardless of how the loop
/// is driven (run_until chunks, step-by-step, or mixed), and under heavy
/// cancellation churn. Also checks the end-to-end (topology, seed) →
/// identical-run guarantee through a DTP pair.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "dtp/agent.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace dtpsim::sim {
namespace {

using namespace dtpsim::literals;

/// How a run drains the queue; the trace must not depend on this.
enum class Drive { kRunUntil, kStep, kMixed };

using Trace = std::vector<std::pair<fs_t, std::uint64_t>>;

/// Churn workload: RNG-driven self-sustaining chains that schedule at random
/// offsets (forcing timestamp ties), cancel a third of what they schedule,
/// and tag every firing so the trace captures identity, not just time.
class ChurnWorkload {
 public:
  ChurnWorkload(Simulator& sim, std::uint64_t until_events)
      : sim_(sim), rng_(sim.fork_rng(0xC0DE)), until_events_(until_events) {}

  void seed_chains(int n) {
    for (int i = 0; i < n; ++i) schedule_next();
  }

  const Trace& trace() const { return trace_; }

 private:
  void schedule_next() {
    if (fired_ >= until_events_) return;
    // Coarse quantization (multiples of 4 fs from a small range) makes
    // timestamp collisions frequent, exercising the FIFO tie-break.
    const fs_t dt = 4 * (1 + static_cast<fs_t>(rng_.uniform(8)));
    const std::uint64_t tag = next_tag_++;
    auto h = sim_.schedule_in(dt, [this, tag] {
      ++fired_;
      trace_.emplace_back(sim_.now(), tag);
      schedule_next();
      if (fired_ % 5 == 0) schedule_next();  // occasional branching
    });
    if (rng_.uniform(3) == 0) {
      // Schedule a doomed twin and cancel it immediately: churns slots and
      // must not perturb ordering of the survivors.
      auto doomed = sim_.schedule_in(dt, [this] { trace_.emplace_back(-1, 0); });
      sim_.cancel(doomed);
    }
    if (rng_.uniform(7) == 0) {
      sim_.cancel(h);
      schedule_next();  // replace the cancelled chain link
    }
  }

  Simulator& sim_;
  Rng rng_;
  std::uint64_t until_events_;
  std::uint64_t fired_ = 0;
  std::uint64_t next_tag_ = 1;
  Trace trace_;
};

Trace run_workload(std::uint64_t seed, Drive drive) {
  Simulator sim(seed);
  ChurnWorkload w(sim, 5000);
  w.seed_chains(6);
  switch (drive) {
    case Drive::kRunUntil:
      while (sim.events_pending() > 0) sim.run_until(sim.now() + 64);
      break;
    case Drive::kStep:
      while (sim.step()) {
      }
      break;
    case Drive::kMixed:
      while (sim.events_pending() > 0) {
        for (int i = 0; i < 7; ++i) sim.step();
        sim.run_until(sim.now() + 16);
        sim.run_until(sim.now());  // zero-width window must be harmless
      }
      break;
  }
  return w.trace();
}

TEST(SimDeterminism, SameSeedSameTraceAcrossRuns) {
  const Trace a = run_workload(42, Drive::kRunUntil);
  const Trace b = run_workload(42, Drive::kRunUntil);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(SimDeterminism, TraceIndependentOfDriveStyle) {
  const Trace run_until = run_workload(7, Drive::kRunUntil);
  const Trace stepped = run_workload(7, Drive::kStep);
  const Trace mixed = run_workload(7, Drive::kMixed);
  ASSERT_FALSE(run_until.empty());
  EXPECT_EQ(run_until, stepped);
  EXPECT_EQ(run_until, mixed);
}

TEST(SimDeterminism, DifferentSeedsDiverge) {
  EXPECT_NE(run_workload(1, Drive::kStep), run_workload(2, Drive::kStep));
}

TEST(SimDeterminism, NoCancelledEventLeaksIntoTrace) {
  const Trace t = run_workload(99, Drive::kMixed);
  for (const auto& [time, tag] : t) {
    EXPECT_GE(time, 0);
    EXPECT_NE(tag, 0u);
  }
}

TEST(SimDeterminism, EventsPendingNeverUnderflowsDuringChurn) {
  Simulator sim(5);
  ChurnWorkload w(sim, 2000);
  w.seed_chains(4);
  // An underflowing size_t would blow past this bound instantly.
  while (sim.step()) ASSERT_LT(sim.events_pending(), 1u << 20);
  EXPECT_EQ(sim.events_pending(), 0u);
}

// End-to-end: a synchronized DTP pair is bit-identical across two runs with
// the same (topology, seed), down to event counts and counter values.
TEST(SimDeterminism, DtpPairRunsAreIdentical) {
  auto run_once = [] {
    Simulator sim(77);
    net::Network net(sim);
    auto& a = net.add_host("a", 100.0);
    auto& b = net.add_host("b", -100.0);
    net.connect(a, b);
    dtp::Agent agent_a(a, {}), agent_b(b, {});
    sim.run_until(from_ms(1));
    return std::tuple{sim.events_executed(), agent_a.global_at(sim.now()).low64(),
                      agent_b.global_at(sim.now()).low64()};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace dtpsim::sim
