#include "dtp/network.hpp"

#include <gtest/gtest.h>

#include "dtp_test_util.hpp"
#include "net/topology.hpp"

namespace dtpsim::dtp {
namespace {

using namespace dtpsim::literals;

double max_offset_over(DtpNetwork& dtp, sim::Simulator& sim, fs_t until, fs_t step) {
  double worst = 0;
  testutil::run_sampled(sim, until, step,
                        [&](fs_t t) { worst = std::max(worst, dtp.max_pairwise_offset_ticks(t)); });
  return worst;
}

TEST(DtpStar, AllPortsSync) {
  sim::Simulator sim(21);
  net::Network net(sim);
  auto star = net::build_star(net, 8);
  DtpNetwork dtp = enable_dtp(net);
  sim.run_until(2_ms);
  EXPECT_TRUE(dtp.all_synced());
  EXPECT_EQ(dtp.size(), 9u);
}

TEST(DtpStar, TwoHopBound) {
  // Any two hosts in a star are 2 hops apart: bound 4T * 2 = 8 ticks.
  sim::Simulator sim(22);
  net::Network net(sim);
  net::build_star(net, 8);
  DtpNetwork dtp = enable_dtp(net);
  sim.run_until(2_ms);
  EXPECT_LE(max_offset_over(dtp, sim, 100_ms, 50_us), 8.0);
}

TEST(DtpPaperTree, AllSyncedAndBounded) {
  // Fig. 5: max hop distance between leaves is 4 -> bound 16 ticks
  // (102.4 ns); the paper measured per-link offsets within 4 ticks.
  sim::Simulator sim(23);
  net::Network net(sim);
  auto tree = net::build_paper_tree(net);
  DtpNetwork dtp = enable_dtp(net);
  sim.run_until(2_ms);
  ASSERT_TRUE(dtp.all_synced());
  EXPECT_LE(max_offset_over(dtp, sim, 100_ms, 50_us), 16.0);
  EXPECT_EQ(tree.leaves.size(), 8u);
}

TEST(DtpPaperTree, PerLinkOffsetWithinFourTicks) {
  sim::Simulator sim(24);
  net::Network net(sim);
  auto tree = net::build_paper_tree(net);
  DtpNetwork dtp = enable_dtp(net);
  sim.run_until(2_ms);
  Agent* root = dtp.agent_of(tree.root);
  Agent* agg0 = dtp.agent_of(tree.aggs[0]);
  Agent* leaf0 = dtp.agent_of(tree.leaves[0]);
  ASSERT_TRUE(root && agg0 && leaf0);
  double worst_link = 0;
  testutil::run_sampled(sim, 100_ms, 50_us, [&](fs_t t) {
    worst_link = std::max(worst_link, std::abs(true_offset_fractional(*root, *agg0, t)));
    worst_link = std::max(worst_link, std::abs(true_offset_fractional(*agg0, *leaf0, t)));
  });
  EXPECT_LE(worst_link, 4.0);
}

class ChainBound : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChainBound, FourTDHoldsPerHopCount) {
  const std::size_t n_switches = GetParam();
  const auto hops = static_cast<double>(n_switches + 1);
  sim::Simulator sim(100 + n_switches);
  net::Network net(sim);
  auto chain = net::build_chain(net, n_switches);
  DtpNetwork dtp = enable_dtp(net);
  sim.run_until(2_ms);
  ASSERT_TRUE(dtp.all_synced());
  Agent* l = dtp.agent_of(chain.left);
  Agent* r = dtp.agent_of(chain.right);
  double worst = 0;
  testutil::run_sampled(sim, 60_ms, 50_us, [&](fs_t t) {
    worst = std::max(worst, std::abs(true_offset_fractional(*l, *r, t)));
  });
  EXPECT_LE(worst, 4.0 * hops) << n_switches << " switches";
}

INSTANTIATE_TEST_SUITE_P(Hops, ChainBound, ::testing::Values(1, 2, 3, 5));

TEST(DtpFatTree, SixHopBoundHolds) {
  // The abstract's datacenter-wide claim: 6 hops -> 24 ticks = 153.6 ns.
  sim::Simulator sim(25);
  net::Network net(sim);
  auto ft = net::build_fat_tree(net, 4);
  DtpNetwork dtp = enable_dtp(net);
  sim.run_until(3_ms);
  ASSERT_TRUE(dtp.all_synced());
  EXPECT_EQ(ft.hosts.size(), 16u);
  EXPECT_EQ(dtp.size(), 36u);
  EXPECT_LE(max_offset_over(dtp, sim, 50_ms, 100_us), 24.0);
}

TEST(DtpUnderLoad, SaturatedLinksDoNotDegradePrecision) {
  // Fig. 6a: network under heavy MTU load, beacon interval 200.
  sim::Simulator sim(26);
  net::Network net(sim);
  auto& a = net.add_host("a");
  auto& b = net.add_host("b");
  net.connect(a, b);
  DtpParams params;
  params.beacon_interval_ticks = 200;
  Agent agent_a(a, params), agent_b(b, params);
  // INIT happens at link establishment, before applications saturate the
  // link (as in any real deployment); load starts once the ports are synced.
  net::TrafficParams tp;
  tp.saturate = true;
  tp.frame_bytes = net::kMtuFrameBytes;
  auto& tg_a = net.add_traffic(a, b.addr(), tp);
  auto& tg_b = net.add_traffic(b, a.addr(), tp);
  sim.run_until(1_ms);
  ASSERT_EQ(agent_b.port_logic(0).state(), PortState::kSynced);
  tg_a.start();
  tg_b.start();
  sim.run_until(2_ms);
  double worst = 0;
  testutil::run_sampled(sim, 100_ms, 50_us, [&](fs_t t) {
    worst = std::max(worst, std::abs(true_offset_fractional(agent_a, agent_b, t)));
  });
  EXPECT_LE(worst, 4.0);
  EXPECT_GT(a.nic().stats().tx_frames, 10'000u) << "the link must actually be loaded";
}

TEST(DtpUnderLoad, JumboFramesWithInterval1200) {
  // Fig. 6b: jumbo saturation forces the beacon interval to 1200 ticks.
  sim::Simulator sim(27);
  net::Network net(sim);
  auto& a = net.add_host("a");
  auto& b = net.add_host("b");
  net.connect(a, b);
  DtpParams params;
  params.beacon_interval_ticks = 1200;
  Agent agent_a(a, params), agent_b(b, params);
  net::TrafficParams tp;
  tp.saturate = true;
  tp.frame_bytes = net::kJumboFrameBytes;
  auto& tg_a = net.add_traffic(a, b.addr(), tp);
  auto& tg_b = net.add_traffic(b, a.addr(), tp);
  sim.run_until(1_ms);
  ASSERT_EQ(agent_b.port_logic(0).state(), PortState::kSynced);
  tg_a.start();
  tg_b.start();
  sim.run_until(2_ms);
  double worst = 0;
  testutil::run_sampled(sim, 100_ms, 50_us, [&](fs_t t) {
    worst = std::max(worst, std::abs(true_offset_fractional(agent_a, agent_b, t)));
  });
  EXPECT_LE(worst, 4.0);
}

TEST(DtpJoin, LateJoinerAdoptsNetworkCounter) {
  // A pre-aged pair (large counters) and a fresh device joining through a
  // switch: BEACON-JOIN must propagate the max through the device.
  sim::Simulator sim(28);
  net::Network net(sim);
  auto& sw = net.add_switch("sw");
  auto& old1 = net.add_host("old1");
  auto& old2 = net.add_host("old2");
  auto& fresh = net.add_host("fresh");
  net.connect(sw, old1);
  net.connect(sw, old2);
  net.connect(sw, fresh);
  DtpNetwork dtp = enable_dtp(net);
  Agent* a_old1 = dtp.agent_of(&old1);
  // Pre-age one host by ~1 ms worth of ticks.
  a_old1->force_global(sim.now(), WideCounter(150'000));
  a_old1->port_logic(0).send_join();
  sim.run_until(5_ms);
  EXPECT_LE(dtp.max_pairwise_offset_ticks(sim.now()), 8.0)
      << "everyone adopted the aged counter";
  EXPECT_GE(static_cast<std::uint64_t>(
                dtp.agent_of(&fresh)->global_at(sim.now()).low64()),
            150'000u);
}

TEST(DtpJoin, PartitionHealAgreesOnMax) {
  // Two independently synchronized pairs whose counters diverge, then a
  // bridge appears: both sides must converge to the larger counter.
  sim::Simulator sim(29);
  net::Network net(sim);
  auto& sw1 = net.add_switch("sw1");
  auto& sw2 = net.add_switch("sw2");
  auto& h1 = net.add_host("h1");
  auto& h2 = net.add_host("h2");
  net.connect(sw1, h1);
  net.connect(sw2, h2);
  // Bridge the two switches up front (links must exist before agents), but
  // pre-age subnet 1 to emulate divergence.
  net.connect(sw1, sw2);
  DtpNetwork dtp = enable_dtp(net);
  dtp.agent_of(&h1)->force_global(sim.now(), WideCounter(1'000'000));
  dtp.agent_of(&h1)->port_logic(0).send_join();
  sim.run_until(5_ms);
  EXPECT_LE(dtp.max_pairwise_offset_ticks(sim.now()), 8.0);
  EXPECT_GE(static_cast<std::uint64_t>(dtp.agent_of(&h2)->global_at(sim.now()).low64()),
            1'000'000u);
}

class MultiRate : public ::testing::TestWithParam<phy::LinkRate> {};

TEST_P(MultiRate, BoundScalesWithRate) {
  // Table 2: at each rate, counters tick in 0.32 ns units with the rate's
  // delta; the directly-connected bound is 4 ticks of that rate's period.
  const phy::LinkRate rate = GetParam();
  const auto& spec = phy::rate_spec(rate);
  net::NetworkParams np;
  np.rate = rate;
  DtpParams params;
  params.counter_delta = spec.counter_delta;
  sim::Simulator sim(31 + static_cast<std::uint64_t>(rate));
  net::Network net(sim, np);
  auto& a = net.add_host("a", 100.0);
  auto& b = net.add_host("b", -100.0);
  net.connect(a, b);
  Agent agent_a(a, params), agent_b(b, params);
  sim.run_until(2_ms);
  ASSERT_EQ(agent_b.port_logic(0).state(), PortState::kSynced);
  double worst_units = 0;
  testutil::run_sampled(sim, 50_ms, 20_us, [&](fs_t t) {
    worst_units = std::max(worst_units, std::abs(true_offset_fractional(agent_a, agent_b, t)));
  });
  // 4 ticks * delta units per tick.
  EXPECT_LE(worst_units, 4.0 * spec.counter_delta) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(Rates, MultiRate,
                         ::testing::Values(phy::LinkRate::k1G, phy::LinkRate::k10G,
                                           phy::LinkRate::k40G, phy::LinkRate::k100G));

TEST(DtpNetworkHelpers, AgentLookupAndMissingDevice) {
  sim::Simulator sim(32);
  net::Network net(sim);
  auto& a = net.add_host("a");
  auto& b = net.add_host("b");
  net.connect(a, b);
  DtpNetwork dtp = enable_dtp(net);
  EXPECT_NE(dtp.agent_of(&a), nullptr);
  net::Host outside(sim, "outside", net::MacAddr{99}, {});
  EXPECT_EQ(dtp.agent_of(&outside), nullptr);
}

}  // namespace
}  // namespace dtpsim::dtp
