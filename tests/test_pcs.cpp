#include "phy/pcs.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "phy/block.hpp"
#include "phy/rates.hpp"
#include "phy/scrambler.hpp"

namespace dtpsim::phy {
namespace {

std::vector<std::uint8_t> random_frame(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.uniform(256));
  return v;
}

TEST(Block, IdleBlockShape) {
  const Block b = make_idle_block();
  EXPECT_TRUE(b.is_control());
  EXPECT_TRUE(b.is_idle_frame());
  EXPECT_EQ(b.block_type(), kBlockTypeIdle);
  EXPECT_EQ(b.idle_field(), 0u);
}

TEST(Block, IdleFieldRoundTrip) {
  Block b = make_idle_block();
  b.set_idle_field(0x00AB'CDEF'1234'56ULL);
  EXPECT_EQ(b.idle_field(), 0x00AB'CDEF'1234'56ULL);
  EXPECT_EQ(b.block_type(), kBlockTypeIdle) << "type byte must be preserved";
}

TEST(Block, IdleFieldMasksTo56Bits) {
  Block b = make_idle_block();
  b.set_idle_field(~0ULL);
  EXPECT_EQ(b.idle_field(), (1ULL << 56) - 1);
}

TEST(Block, IdleFieldOnDataBlockThrows) {
  std::uint8_t bytes[8] = {};
  Block b = make_data_block(bytes);
  EXPECT_THROW(b.set_idle_field(1), std::logic_error);
}

TEST(Block, TerminateVariants) {
  std::uint8_t bytes[7] = {1, 2, 3, 4, 5, 6, 7};
  for (int n = 0; n <= 7; ++n) {
    const Block b = make_terminate_block(bytes, n);
    EXPECT_TRUE(b.is_terminate());
    EXPECT_EQ(b.terminate_data_bytes(), n);
    for (int i = 0; i < n; ++i) EXPECT_EQ(b.byte(i + 1), bytes[i]);
  }
  EXPECT_THROW(make_terminate_block(bytes, 8), std::invalid_argument);
}

TEST(Block, ByteAccessors) {
  Block b;
  b.sync = kSyncData;
  for (int i = 0; i < 8; ++i) b.set_byte(i, static_cast<std::uint8_t>(0x10 + i));
  for (int i = 0; i < 8; ++i) EXPECT_EQ(b.byte(i), 0x10 + i);
}

TEST(Pcs, EncodeProducesStartDataTerminate) {
  Rng rng(1);
  const auto frame = random_frame(rng, 64);
  const auto blocks = encode_frame(frame);
  ASSERT_GE(blocks.size(), 3u);
  EXPECT_TRUE(blocks.front().is_start());
  EXPECT_TRUE(blocks.back().is_terminate());
  for (std::size_t i = 1; i + 1 < blocks.size(); ++i) EXPECT_TRUE(blocks[i].is_data());
}

TEST(Pcs, RoundTripSmallFrame) {
  Rng rng(2);
  const auto frame = random_frame(rng, 72);
  FrameDecoder dec;
  bool done = false;
  for (const auto& b : encode_frame(frame)) done = dec.feed(b);
  ASSERT_TRUE(done);
  EXPECT_EQ(dec.take_frame(), frame);
}

TEST(Pcs, RoundTripAllResidues) {
  // Every frame length mod 8 exercises a different terminate variant.
  Rng rng(3);
  for (std::size_t n = 60; n < 76; ++n) {
    const auto frame = random_frame(rng, n);
    FrameDecoder dec;
    bool done = false;
    for (const auto& b : encode_frame(frame)) done = dec.feed(b);
    ASSERT_TRUE(done) << n;
    EXPECT_EQ(dec.take_frame(), frame) << n;
  }
}

class PcsRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PcsRoundTrip, RandomFrames) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 20; ++iter) {
    const std::size_t n = 7 + rng.uniform(9200);
    const auto frame = random_frame(rng, n);
    FrameDecoder dec;
    bool done = false;
    for (const auto& b : encode_frame(frame)) {
      ASSERT_FALSE(done);
      done = dec.feed(b);
    }
    ASSERT_TRUE(done);
    EXPECT_EQ(dec.take_frame(), frame);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcsRoundTrip, ::testing::Values(11, 22, 33, 44, 55));

TEST(Pcs, BlockCountMatchesRateModel) {
  Rng rng(4);
  for (std::size_t n : {64u, 1522u, 9018u}) {
    const auto frame = random_frame(rng, n);
    const auto blocks = encode_frame(frame);
    // The analytic model used by the event simulation must agree with the
    // real codec to within one block.
    EXPECT_NEAR(static_cast<double>(blocks.size()),
                static_cast<double>(blocks_for_frame(static_cast<std::int64_t>(n))), 1.0)
        << n;
  }
}

TEST(Pcs, IdleBetweenFramesIgnored) {
  Rng rng(5);
  const auto f1 = random_frame(rng, 64);
  const auto f2 = random_frame(rng, 65);
  FrameDecoder dec;
  for (const auto& b : encode_frame(f1)) dec.feed(b);
  EXPECT_EQ(dec.take_frame(), f1);
  dec.feed(make_idle_block());
  dec.feed(make_idle_block());
  bool done = false;
  for (const auto& b : encode_frame(f2)) done = dec.feed(b);
  ASSERT_TRUE(done);
  EXPECT_EQ(dec.take_frame(), f2);
}

TEST(Pcs, MalformedSequencesCountedNotThrown) {
  Rng rng(6);
  const auto frame = random_frame(rng, 64);
  const auto blocks = encode_frame(frame);

  FrameDecoder d1;  // data before start: counted, still hunting for /S/
  EXPECT_FALSE(d1.feed(blocks[1]));
  EXPECT_EQ(d1.errors().data_outside_frame, 1u);
  EXPECT_FALSE(d1.in_frame());

  FrameDecoder d2;  // idle inside a frame: partial frame dropped
  d2.feed(blocks[0]);
  EXPECT_FALSE(d2.feed(make_idle_block()));
  EXPECT_EQ(d2.errors().idle_in_frame, 1u);
  EXPECT_EQ(d2.errors().frames_dropped, 1u);
  EXPECT_FALSE(d2.in_frame());

  FrameDecoder d3;  // start inside a frame: old frame dropped, new one begins
  d3.feed(blocks[0]);
  EXPECT_FALSE(d3.feed(blocks[0]));
  EXPECT_EQ(d3.errors().start_in_frame, 1u);
  EXPECT_TRUE(d3.in_frame());

  FrameDecoder d4;  // terminate outside a frame: counted and ignored
  EXPECT_FALSE(d4.feed(blocks.back()));
  EXPECT_EQ(d4.errors().term_outside_frame, 1u);
}

TEST(Pcs, RecoversAfterEveryMalformedSequence) {
  // After any adversarial prefix, a clean frame must still decode intact —
  // the decoder counts the damage and resynchronizes, never desyncing
  // permanently (ISSUE 4 satellite: fuzzer-grade input hardening).
  Rng rng(7);
  const auto good = random_frame(rng, 64);
  const auto good_blocks = encode_frame(good);

  Block bad_sync;  // invalid 2-bit sync header (neither 0b01 nor 0b10)
  bad_sync.sync = 0b11;
  bad_sync.payload = 0xDEADBEEFCAFEF00DULL;

  Block bad_type;  // control block with a garbage type byte
  bad_type.sync = kSyncControl;
  bad_type.payload = 0x42;  // not idle/start/terminate/ordered-set

  Block ordered_set;  // legal clause-49 type the frame decoder does not use
  ordered_set.sync = kSyncControl;
  ordered_set.payload = kBlockTypeOrderedSet;

  const std::vector<std::vector<Block>> adversarial_prefixes = {
      {bad_sync},
      {bad_type},
      {ordered_set},
      {good_blocks[1]},                     // stray data
      {good_blocks.back()},                 // stray /T/
      {good_blocks[0], bad_sync},           // sync corruption mid-frame
      {good_blocks[0], bad_type},           // garbage type mid-frame
      {good_blocks[0], good_blocks[1], make_idle_block()},  // truncated frame
  };

  for (const auto& prefix : adversarial_prefixes) {
    FrameDecoder dec;
    for (const auto& b : prefix) dec.feed(b);
    EXPECT_GE(dec.errors().total(), 1u);
    bool done = false;
    for (const auto& b : good_blocks) done = dec.feed(b);
    ASSERT_TRUE(done);
    EXPECT_EQ(dec.take_frame(), good);
  }
}

TEST(Pcs, RandomBlockSoakNeverWedges) {
  // Property soak: a long stream of random 66-bit blocks with clean frames
  // interleaved. Every clean frame that follows an idle gap must decode.
  Rng rng(8);
  FrameDecoder dec;
  std::uint64_t decoded = 0;
  for (int round = 0; round < 200; ++round) {
    const std::size_t garbage = rng.uniform(8);
    for (std::size_t i = 0; i < garbage; ++i) {
      Block b;
      b.sync = static_cast<std::uint8_t>(rng.uniform(4));
      b.payload = rng();
      dec.feed(b);
    }
    dec.feed(make_idle_block());  // inter-frame gap: guaranteed resync point
    const auto frame = random_frame(rng, 64 + rng.uniform(128));
    bool done = false;
    for (const auto& b : encode_frame(frame)) done = dec.feed(b);
    ASSERT_TRUE(done) << "round " << round;
    EXPECT_EQ(dec.take_frame(), frame);
    ++decoded;
  }
  EXPECT_EQ(decoded, 200u);
}

TEST(Pcs, ShortFrameRejected) {
  EXPECT_THROW(encode_frame(std::vector<std::uint8_t>(6)), std::invalid_argument);
}

TEST(Pcs, TakeFrameWithoutCompletionThrows) {
  FrameDecoder dec;
  EXPECT_THROW(dec.take_frame(), std::logic_error);
}

TEST(Scrambler, RoundTripWithMatchedSeeds) {
  Scrambler s(0x123);
  Descrambler d(0x123);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t payload = rng();
    EXPECT_EQ(d.descramble(s.scramble(payload)), payload);
  }
}

TEST(Scrambler, DescramblerSelfSynchronizes) {
  // Even with a wrong initial state, after one 64-bit block (> 58 bits of
  // state) the descrambler locks on.
  Scrambler s(0xABCDEF);
  Descrambler d(0);  // wrong seed
  Rng rng(8);
  d.descramble(s.scramble(rng()));  // sacrificial block
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t payload = rng();
    EXPECT_EQ(d.descramble(s.scramble(payload)), payload);
  }
}

TEST(Scrambler, OutputLooksScrambled) {
  // An all-zero payload stream must not stay all-zero on the wire (DC
  // balance is the whole point).
  Scrambler s(0x5A5A5A);
  int nonzero = 0;
  for (int i = 0; i < 20; ++i)
    if (s.scramble(0) != 0) ++nonzero;
  EXPECT_GE(nonzero, 19);
}

TEST(Scrambler, BlockHelperPreservesSyncHeader) {
  Scrambler s;
  Block b = make_idle_block();
  b.set_idle_field(0x1234);
  const Block scrambled = s.scramble_block(b);
  EXPECT_EQ(scrambled.sync, b.sync);
  EXPECT_NE(scrambled.payload, b.payload);
}

TEST(Scrambler, DtpMessageSurvivesScrambling) {
  // The full TX chain: DTP bits -> idle block -> scramble -> descramble.
  Scrambler s(0x77);
  Descrambler d(0x77);
  Block b = make_idle_block();
  b.set_idle_field(0x00DE'ADBE'EF12'34ULL);
  const Block rx = d.descramble_block(s.scramble_block(b));
  EXPECT_EQ(rx, b);
  EXPECT_EQ(rx.idle_field(), 0x00DE'ADBE'EF12'34ULL);
}

}  // namespace
}  // namespace dtpsim::phy
