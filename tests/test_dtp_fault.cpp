#include <gtest/gtest.h>

#include "dtp_test_util.hpp"

namespace dtpsim::dtp {
namespace {

using namespace dtpsim::literals;
using testutil::TwoNodes;

TEST(DtpBitErrors, RangeFilterDropsCorruptBeacons) {
  // With a lossy cable, corrupted counters land far outside +-8 and must be
  // filtered rather than applied.
  net::NetworkParams np;
  np.cable.ber = 1e-6;  // ~6.6e-5 per block: plenty of hits at beacon rate
  TwoNodes n(41, 100.0, -100.0, {}, np);
  n.sim.run_until(300_ms);
  EXPECT_GT(n.port_b().stats().filtered_range + n.port_a().stats().filtered_range, 0u)
      << "the filter must actually have fired";
}

TEST(DtpBitErrors, PrecisionSurvivesBer) {
  net::NetworkParams np;
  np.cable.ber = 1e-6;
  TwoNodes n(42, 100.0, -100.0, {}, np);
  n.sim.run_until(2_ms);
  double worst = 0;
  testutil::run_sampled(n.sim, 200_ms, 50_us, [&](fs_t) {
    worst = std::max(worst, n.abs_offset_ticks());
  });
  // Bit errors in the low 3 bits can slip through the range filter and
  // cause a bounded error spike; it must stay within the filter threshold.
  EXPECT_LE(worst, 8.0);
}

TEST(DtpBitErrors, ParityCatchesLowBitFlips) {
  DtpParams params;
  params.parity = true;
  net::NetworkParams np;
  np.cable.ber = 1e-6;
  TwoNodes n(43, 100.0, -100.0, params, np);
  n.sim.run_until(300_ms);
  // Some corrupted messages must have been dropped by parity.
  EXPECT_GT(n.port_a().stats().filtered_parity + n.port_b().stats().filtered_parity, 0u);
}

TEST(DtpBitErrors, ParityModeKeepsFourTickBoundUnderBer) {
  DtpParams params;
  params.parity = true;
  net::NetworkParams np;
  np.cable.ber = 1e-6;
  TwoNodes n(44, 100.0, -100.0, params, np);
  n.sim.run_until(2_ms);
  double worst = 0;
  testutil::run_sampled(n.sim, 200_ms, 50_us, [&](fs_t) {
    worst = std::max(worst, n.abs_offset_ticks());
  });
  // Parity closes the 3-LSB hole: only filtered messages remain, so the
  // clean-link bound applies. Keep one tick of slack for the rare flip in
  // bits [3..5] that lands within the +-8 window yet passes parity.
  EXPECT_LE(worst, 6.0);
}

TEST(DtpFaulty, JumpDetectorQuarantinesMisbehavingPeer) {
  // A "faulty" peer repeatedly announcing counters ~6 ticks ahead (inside
  // the range filter, above the jump threshold) must be quarantined.
  DtpParams params;
  params.enable_jump_detector = true;
  params.jump_threshold_ticks = 4;
  params.max_jumps = 8;
  params.jump_window = 10_ms;
  TwoNodes n(45, 0.0, 0.0, params);
  n.sim.run_until(2_ms);
  ASSERT_EQ(n.port_b().state(), PortState::kSynced);

  // Fault injection: keep bumping a's counter by 6 ticks so every beacon
  // demands a suspicious jump from b.
  sim::PeriodicProcess fault(n.sim, 100_us, [&] {
    n.agent_a->force_global(n.sim.now(), n.agent_a->global_at(n.sim.now()).plus(6));
  });
  fault.start();
  n.sim.run_until(100_ms);
  EXPECT_EQ(n.port_b().state(), PortState::kFaulty);
}

TEST(DtpFaulty, QuarantinedPortStopsAdjusting) {
  DtpParams params;
  params.enable_jump_detector = true;
  params.jump_threshold_ticks = 4;
  params.max_jumps = 4;
  params.jump_window = 10_ms;
  TwoNodes n(46, 0.0, 0.0, params);
  n.sim.run_until(2_ms);
  sim::PeriodicProcess fault(n.sim, 100_us, [&] {
    n.agent_a->force_global(n.sim.now(), n.agent_a->global_at(n.sim.now()).plus(6));
  });
  fault.start();
  n.sim.run_until(50_ms);
  ASSERT_EQ(n.port_b().state(), PortState::kFaulty);
  const auto adjustments = n.port_b().stats().adjustments;
  n.sim.run_until(150_ms);
  EXPECT_EQ(n.port_b().stats().adjustments, adjustments)
      << "no further adjustments from a quarantined peer";
}

TEST(DtpFaulty, HonestPeerNeverQuarantined) {
  DtpParams params;
  params.enable_jump_detector = true;
  params.jump_threshold_ticks = 4;
  params.max_jumps = 8;
  params.jump_window = 10_ms;
  TwoNodes n(47, 100.0, -100.0, params);  // worst legal skew
  n.sim.run_until(500_ms);
  EXPECT_EQ(n.port_a().state(), PortState::kSynced);
  EXPECT_EQ(n.port_b().state(), PortState::kSynced);
}

TEST(DtpFaulty, OutOfSpecOscillatorStillTrackedWithoutDetector) {
  // Section 5.4: an oscillator beyond +-100 ppm breaks the analysis bound
  // but DTP still tracks it (with more jumps) when the detector is off.
  TwoNodes n(48, 300.0, -100.0);  // 400 ppm relative skew
  n.sim.run_until(2_ms);
  double worst = 0;
  testutil::run_sampled(n.sim, 100_ms, 50_us, [&](fs_t) {
    worst = std::max(worst, n.abs_offset_ticks());
  });
  // Bound widens but stays small: beacons still arrive every 1.28 us.
  EXPECT_LE(worst, 8.0);
  EXPECT_GT(n.port_b().stats().adjustments, 0u);
}

TEST(DtpRobust, InitRetryRecoversFromLatePeer) {
  // Agent on `a` starts alone; `b` gets DTP only later (incremental
  // deployment). a's INIT retries must establish sync eventually.
  sim::Simulator sim(49);
  net::Network net(sim);
  auto& a = net.add_host("a", 50.0);
  auto& b = net.add_host("b", -50.0);
  net.connect(a, b);
  DtpParams params;
  params.init_retry_ticks = 10'000;  // 64 us
  Agent agent_a(a, params);
  sim.run_until(1_ms);
  EXPECT_EQ(agent_a.port_logic(0).state(), PortState::kInitWait);
  Agent agent_b(b, params);  // DTP firmware arrives on b
  sim.run_until(3_ms);
  EXPECT_EQ(agent_a.port_logic(0).state(), PortState::kSynced);
  EXPECT_EQ(agent_b.port_logic(0).state(), PortState::kSynced);
  EXPECT_GT(agent_a.port_logic(0).stats().inits_sent, 1u) << "retries happened";
}

}  // namespace
}  // namespace dtpsim::dtp
