/// Property sweep: random tree topologies of random sizes and skews must
/// all satisfy the 4TD bound, where D is the tree's hop diameter. This is
/// the paper's scalability claim tested beyond the fixed shapes of the
/// evaluation section.

#include <gtest/gtest.h>

#include <queue>

#include "dtp/network.hpp"
#include "dtp_test_util.hpp"
#include "net/topology.hpp"

namespace dtpsim::dtp {
namespace {

using namespace dtpsim::literals;

struct RandomTree {
  std::vector<net::Device*> devices;
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  std::size_t diameter_hops = 0;
};

/// Build a random tree: `n_switches` switches in a random tree shape, one
/// host hanging off every switch.
RandomTree build_random_tree(net::Network& net, Rng& rng, std::size_t n_switches) {
  RandomTree tree;
  std::vector<net::Switch*> switches;
  for (std::size_t i = 0; i < n_switches; ++i) {
    switches.push_back(&net.add_switch("sw" + std::to_string(i)));
    tree.devices.push_back(switches.back());
    if (i > 0) {
      const std::size_t parent = rng.uniform(i);
      net.connect(*switches[parent], *switches[i]);
      tree.edges.emplace_back(parent, i);
    }
  }
  for (std::size_t i = 0; i < n_switches; ++i) {
    auto& host = net.add_host("h" + std::to_string(i));
    net.connect(*switches[i], host);
    tree.edges.emplace_back(i, tree.devices.size());
    tree.devices.push_back(&host);
  }

  // Hop diameter by double BFS over the device graph.
  const std::size_t n = tree.devices.size();
  std::vector<std::vector<std::size_t>> adj(n);
  for (auto [a, b] : tree.edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  auto bfs = [&](std::size_t start) {
    std::vector<int> dist(n, -1);
    std::queue<std::size_t> q;
    dist[start] = 0;
    q.push(start);
    std::size_t far = start;
    while (!q.empty()) {
      const std::size_t u = q.front();
      q.pop();
      for (std::size_t v : adj[u])
        if (dist[v] < 0) {
          dist[v] = dist[u] + 1;
          if (dist[v] > dist[far]) far = v;
          q.push(v);
        }
    }
    return std::pair<std::size_t, std::size_t>(far, static_cast<std::size_t>(dist[far]));
  };
  const auto [far, _] = bfs(0);
  tree.diameter_hops = bfs(far).second;
  return tree;
}

class RandomTrees : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTrees, FourTDBoundHolds) {
  const std::uint64_t seed = GetParam();
  sim::Simulator sim(seed);
  net::NetworkParams np;
  np.enable_drift = true;
  np.drift.step_ppm = 0.01;
  np.drift.update_interval = from_ms(10);
  net::Network net(sim, np);
  Rng shape_rng(seed * 7919);
  const std::size_t n_switches = 2 + shape_rng.uniform(6);
  const RandomTree tree = build_random_tree(net, shape_rng, n_switches);

  DtpNetwork dtp = enable_dtp(net);
  sim.run_until(from_ms(3));
  ASSERT_TRUE(dtp.all_synced()) << "seed " << seed;

  double worst = 0;
  testutil::run_sampled(sim, from_ms(40), from_us(50), [&](fs_t t) {
    worst = std::max(worst, dtp.max_pairwise_offset_ticks(t));
  });
  const double bound = 4.0 * static_cast<double>(tree.diameter_hops);
  EXPECT_LE(worst, bound) << "seed " << seed << " diameter " << tree.diameter_hops
                          << " devices " << tree.devices.size();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTrees, ::testing::Range<std::uint64_t>(1, 17));

class RandomTreesMasterMode : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTreesMasterMode, MasterTreeBoundHolds) {
  const std::uint64_t seed = GetParam();
  sim::Simulator sim(seed + 5000);
  net::Network net(sim);
  Rng shape_rng(seed * 104729);
  const RandomTree tree = build_random_tree(net, shape_rng, 2 + shape_rng.uniform(4));

  DtpParams params;
  params.mode = SyncMode::kMasterTree;
  DtpNetwork dtp = enable_dtp(net, params);
  EXPECT_EQ(configure_master_tree(dtp, *tree.devices[0]), dtp.size());
  sim.run_until(from_ms(3));

  double worst = 0;
  testutil::run_sampled(sim, from_ms(40), from_us(50), [&](fs_t t) {
    worst = std::max(worst, dtp.max_pairwise_offset_ticks(t));
  });
  // Parent-following gives a comparable per-hop budget (a couple of ticks
  // of tracking error per level).
  EXPECT_LE(worst, 6.0 * static_cast<double>(tree.diameter_hops))
      << "seed " << seed << " diameter " << tree.diameter_hops;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreesMasterMode, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace dtpsim::dtp
