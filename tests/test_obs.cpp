// Observability layer (DESIGN.md §11): trace-file schema round-trip,
// metrics-snapshot determinism across engine modes, and the guarantee that
// disabled observability leaves a run bit-identical.
//
// The trace check is a *strict* parse: a hand-rolled recursive-descent JSON
// reader that rejects anything outside the grammar (trailing commas, bare
// words, unterminated strings), so a malformed emitter fails here rather
// than in Perfetto.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "stress/runner.hpp"

using namespace dtpsim;

namespace {

// ---------------------------------------------------------------------------
// Strict JSON parser for the Chrome trace "JSON Array Format": a bare array
// of event objects. Scalar members of each top-level object are collected
// into a string map (strings unescaped, numbers/bools kept as raw text);
// nested objects ("args") are validated recursively but not collected.
// ---------------------------------------------------------------------------
struct TraceEvent {
  std::map<std::string, std::string> fields;
};

class StrictTraceParser {
 public:
  explicit StrictTraceParser(const std::string& text) : s_(text) {}

  bool parse(std::vector<TraceEvent>* out, std::string* err) {
    skip_ws();
    if (!expect('[')) return fail(err, "expected top-level array");
    skip_ws();
    if (peek() == ']') {
      ++pos_;
    } else {
      while (true) {
        TraceEvent ev;
        if (!parse_object(&ev)) return fail(err, "bad event object");
        out->push_back(std::move(ev));
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          skip_ws();
          continue;
        }
        if (peek() == ']') {
          ++pos_;
          break;
        }
        return fail(err, "expected ',' or ']' after event");
      }
    }
    skip_ws();
    if (pos_ != s_.size()) return fail(err, "trailing bytes after array");
    return true;
  }

 private:
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  bool expect(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool fail(std::string* err, const char* what) {
    if (err != nullptr) {
      std::ostringstream o;
      o << what << " at byte " << pos_;
      *err = o.str();
    }
    return false;
  }

  bool parse_string(std::string* out) {
    if (!expect('"')) return false;
    std::string v;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') {
        if (out != nullptr) *out = std::move(v);
        return true;
      }
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_++];
        switch (e) {
          case '"': v += '"'; break;
          case '\\': v += '\\'; break;
          case '/': v += '/'; break;
          case 'b': v += '\b'; break;
          case 'f': v += '\f'; break;
          case 'n': v += '\n'; break;
          case 'r': v += '\r'; break;
          case 't': v += '\t'; break;
          case 'u': {
            for (int i = 0; i < 4; ++i) {
              if (pos_ >= s_.size() ||
                  !std::isxdigit(static_cast<unsigned char>(s_[pos_])))
                return false;
              ++pos_;
            }
            v += '?';  // code point value irrelevant to the schema check
            break;
          }
          default:
            return false;
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      v += c;
    }
    return false;  // unterminated
  }

  bool parse_number(std::string* out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (out != nullptr) *out = s_.substr(start, pos_ - start);
    return true;
  }

  bool parse_value(std::string* scalar_out) {
    skip_ws();
    const char c = peek();
    if (c == '"') return parse_string(scalar_out);
    if (c == '{') return parse_object(nullptr);
    if (c == '[') {
      ++pos_;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        if (!parse_value(nullptr)) return false;
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        if (peek() == ']') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
      return parse_number(scalar_out);
    for (const char* lit : {"true", "false", "null"}) {
      const std::size_t n = std::strlen(lit);
      if (s_.compare(pos_, n, lit) == 0) {
        if (scalar_out != nullptr) *scalar_out = lit;
        pos_ += n;
        return true;
      }
    }
    return false;
  }

  /// Parse an object; when `ev` is non-null, collect its scalar members.
  bool parse_object(TraceEvent* ev) {
    skip_ws();
    if (!expect('{')) return false;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      const bool nested = peek() == '{' || peek() == '[';
      std::string val;
      if (!parse_value(&val)) return false;
      if (ev != nullptr && !nested) ev->fields[key] = val;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        skip_ws();
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string tmp_path(const std::string& leaf) { return testing::TempDir() + leaf; }

/// Small deterministic campaign on the paper tree with one link flap —
/// enough activity for offset tracks, fault marks, and recovery instants.
stress::StressSpec obs_spec(std::uint32_t threads) {
  stress::StressSpec s;
  s.sim_seed = 4321;
  s.topo = stress::TopoKind::kPaperTree;
  s.beacon_interval_ticks = 200;
  s.ppm_spread = 100.0;
  s.propagation_delay = from_us(1);  // lookahead for the parallel engine
  s.n_flows = 3;
  s.frame_bytes = 512;
  s.rate_gbps = 2.0;
  s.threads = threads;
  s.settle = from_ms(3);
  s.horizon = from_ms(5);

  chaos::FaultDescriptor flap;
  flap.kind = chaos::FaultKind::kLinkFlap;
  flap.a = "S0";
  flap.b = "S2";
  flap.at = from_ms(3) + from_us(300);
  flap.duration = from_us(80);
  s.faults.push_back(flap);
  return s;
}

bool any_event(const std::vector<TraceEvent>& evs, const char* ph,
               const std::string& name_prefix) {
  for (const auto& e : evs) {
    const auto p = e.fields.find("ph");
    const auto n = e.fields.find("name");
    if (p != e.fields.end() && n != e.fields.end() && p->second == ph &&
        n->second.rfind(name_prefix, 0) == 0)
      return true;
  }
  return false;
}

}  // namespace

// Emit a real trace from a chaos campaign, strict-parse it, and check the
// schema fields Perfetto relies on.
TEST(Obs, TraceFileRoundTripsThroughStrictParse) {
  const std::string trace = tmp_path("obs_roundtrip.trace.json");
  stress::ObsOptions oo;
  oo.trace_path = trace;
  const stress::CampaignResult r = stress::run_campaign(obs_spec(1), &oo);
  for (const auto& v : r.violations) ADD_FAILURE() << v.to_string();

  const std::string text = slurp(trace);
  std::vector<TraceEvent> evs;
  std::string err;
  StrictTraceParser parser(text);
  ASSERT_TRUE(parser.parse(&evs, &err)) << err;
  ASSERT_FALSE(evs.empty());

  // Every event carries the mandatory trace_event fields.
  for (const auto& e : evs) {
    EXPECT_TRUE(e.fields.count("ph")) << "event missing ph";
    EXPECT_TRUE(e.fields.count("pid")) << "event missing pid";
    EXPECT_TRUE(e.fields.count("name")) << "event missing name";
  }

  // Device tracks are named via thread_name metadata records.
  EXPECT_TRUE(any_event(evs, "M", "thread_name"));
  // Per-device offset counter samples.
  EXPECT_TRUE(any_event(evs, "C", "offset_ticks"));
  // Fault begin/end and the recovery probe's verdict appear as instants.
  EXPECT_TRUE(any_event(evs, "i", "fault:link_down"));
  EXPECT_TRUE(any_event(evs, "i", "heal:link_up"));
  EXPECT_TRUE(any_event(evs, "i", "recovered:"));
  // Fault instants are global-scope so Perfetto draws them across tracks.
  bool fault_is_global = false;
  for (const auto& e : evs) {
    const auto n = e.fields.find("name");
    if (n == e.fields.end() || n->second.rfind("fault:", 0) != 0) continue;
    const auto s = e.fields.find("s");
    fault_is_global = s != e.fields.end() && s->second == "g";
    break;
  }
  EXPECT_TRUE(fault_is_global);
  std::remove(trace.c_str());
}

// The metrics snapshot process fires at conservative sync points, so a
// serial and a 2-thread run of the same seed must write byte-identical
// metrics JSON.
TEST(Obs, MetricsSnapshotsDeterministicAcrossEngines) {
  const std::string serial_path = tmp_path("obs_metrics_serial.json");
  const std::string par_path = tmp_path("obs_metrics_par.json");

  stress::ObsOptions oo;
  oo.metrics_path = serial_path;
  stress::CampaignResult rs = stress::run_campaign(obs_spec(1), &oo);
  for (const auto& v : rs.violations) ADD_FAILURE() << v.to_string();

  oo.metrics_path = par_path;
  stress::CampaignResult rp = stress::run_campaign(obs_spec(2), &oo);
  for (const auto& v : rp.violations) ADD_FAILURE() << v.to_string();
  EXPECT_GT(rp.shards, 1) << "spec did not actually exercise the parallel engine";

  const std::string serial_json = slurp(serial_path);
  const std::string par_json = slurp(par_path);
  EXPECT_FALSE(serial_json.empty());
  EXPECT_EQ(serial_json, par_json);
  std::remove(serial_path.c_str());
  std::remove(par_path.c_str());
}

// Observability off must mean *off*: a run with no ObsOptions and a run with
// empty ObsOptions produce bit-identical sentinel digests (no snapshot
// events, no perturbed schedule).
TEST(Obs, DisabledObservabilityLeavesDigestUntouched) {
  const stress::StressSpec spec = obs_spec(1);
  const stress::CampaignResult plain = stress::run_campaign(spec);
  stress::ObsOptions empty;  // no trace path, no metrics path → no session
  const stress::CampaignResult with_empty = stress::run_campaign(spec, &empty);
  EXPECT_EQ(plain.digest.hex(), with_empty.digest.hex());
  EXPECT_EQ(plain.events_executed, with_empty.events_executed);
}

// Enabling observability changes the event schedule (snapshot events exist)
// but must not change behavior: the instrumented run stays violation-free
// and both engine modes agree on the digest *with* obs enabled too.
TEST(Obs, EnabledObservabilityIsDeterministicAcrossEngines) {
  const std::string p1 = tmp_path("obs_digest_serial.metrics.json");
  const std::string p2 = tmp_path("obs_digest_par.metrics.json");
  stress::ObsOptions oo;
  oo.metrics_path = p1;
  const stress::CampaignResult serial = stress::run_campaign(obs_spec(1), &oo);
  oo.metrics_path = p2;
  const stress::CampaignResult par = stress::run_campaign(obs_spec(2), &oo);
  for (const auto& v : serial.violations) ADD_FAILURE() << v.to_string();
  for (const auto& v : par.violations) ADD_FAILURE() << v.to_string();
  EXPECT_EQ(serial.digest.hex(), par.digest.hex());
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}
