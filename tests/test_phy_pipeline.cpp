/// Bit-level conformance: the full TX->wire->RX chain with DTP embedded.
///
/// Section 4 claims two invariants that the event-level simulation takes as
/// given; here they are checked against the real codec:
///   * DTP messages ride in idle blocks, survive scrambling, and are
///     stripped back to plain idles before the MAC — higher layers cannot
///     tell DTP was ever there;
///   * Ethernet frames pass through the DTP sublayer bit-identically.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dtp/messages.hpp"
#include "net/crc32.hpp"
#include "net/frame.hpp"
#include "phy/pcs.hpp"
#include "phy/scrambler.hpp"

namespace dtpsim {
namespace {

using dtp::Message;
using dtp::MessageType;

/// Build a realistic block stream: idles, a DTP beacon, a frame, more idles,
/// another DTP message, another frame...
std::vector<phy::Block> make_tx_stream(Rng& rng, std::vector<std::vector<std::uint8_t>>& frames,
                                       std::vector<Message>& messages, int n_frames) {
  std::vector<phy::Block> stream;
  for (int f = 0; f < n_frames; ++f) {
    // A few plain idles.
    for (int i = 0; i < 3; ++i) stream.push_back(phy::make_idle_block());
    // One DTP message in an idle block.
    Message m{MessageType::kBeacon, rng() & kDtpPayloadMask};
    messages.push_back(m);
    stream.push_back(dtp::encode_into_block(m));
    // One frame.
    std::vector<std::uint8_t> payload(64 + rng.uniform(1400));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform(256));
    frames.push_back(payload);
    const auto blocks = phy::encode_frame(payload);
    stream.insert(stream.end(), blocks.begin(), blocks.end());
  }
  stream.push_back(phy::make_idle_block());
  return stream;
}

TEST(PhyPipeline, FullChainRoundTrip) {
  Rng rng(501);
  std::vector<std::vector<std::uint8_t>> tx_frames;
  std::vector<Message> tx_messages;
  const auto stream = make_tx_stream(rng, tx_frames, tx_messages, 10);

  // TX: scramble everything (payloads only, as the hardware does).
  phy::Scrambler scrambler(0xACE1);
  std::vector<phy::Block> wire;
  for (const auto& b : stream) wire.push_back(scrambler.scramble_block(b));

  // RX: descramble, extract DTP, strip to idles, decode frames.
  phy::Descrambler descrambler(0xACE1);
  phy::FrameDecoder decoder;
  std::vector<Message> rx_messages;
  std::vector<std::vector<std::uint8_t>> rx_frames;
  for (const auto& w : wire) {
    phy::Block b = descrambler.descramble_block(w);
    if (b.is_idle_frame()) {
      if (auto msg = dtp::decode_from_block(b)) rx_messages.push_back(*msg);
      b = dtp::strip_to_idle(b);
      ASSERT_EQ(b, phy::make_idle_block()) << "MAC must see plain idles only";
      continue;
    }
    if (decoder.feed(b)) rx_frames.push_back(decoder.take_frame());
  }

  EXPECT_EQ(rx_messages, tx_messages);
  EXPECT_EQ(rx_frames, tx_frames);
}

TEST(PhyPipeline, DtpPresenceIsInvisibleToFrames) {
  // The same frame bytes, sent once through a DTP-bearing stream and once
  // through a plain stream, must arrive identical.
  Rng rng(502);
  std::vector<std::uint8_t> payload(777);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform(256));

  auto run_through = [&](bool with_dtp) {
    phy::Scrambler s(42);
    phy::Descrambler d(42);
    phy::FrameDecoder dec;
    std::vector<phy::Block> stream;
    if (with_dtp)
      stream.push_back(dtp::encode_into_block({MessageType::kBeacon, 123456}));
    else
      stream.push_back(phy::make_idle_block());
    const auto fb = phy::encode_frame(payload);
    stream.insert(stream.end(), fb.begin(), fb.end());
    std::vector<std::uint8_t> out;
    for (const auto& blk : stream) {
      phy::Block b = d.descramble_block(s.scramble_block(blk));
      if (b.is_idle_frame()) continue;
      if (dec.feed(b)) out = dec.take_frame();
    }
    return out;
  };

  EXPECT_EQ(run_through(true), run_through(false));
}

TEST(PhyPipeline, ScrambledWireLooksBalanced) {
  // DC balance sanity: the scrambled idle stream has roughly half ones.
  phy::Scrambler s(0x1357);
  std::uint64_t ones = 0;
  const int blocks = 2000;
  for (int i = 0; i < blocks; ++i)
    ones += static_cast<std::uint64_t>(
        __builtin_popcountll(s.scramble_block(phy::make_idle_block()).payload));
  const double fraction = static_cast<double>(ones) / (64.0 * blocks);
  EXPECT_NEAR(fraction, 0.5, 0.02);
}

TEST(PhyPipeline, DtpBitsDoNotChangeBalance) {
  // Section 4.4: modifying idle bits does not affect the line's physics
  // because scrambling happens afterwards.
  phy::Scrambler s1(0x99), s2(0x99);
  Rng rng(503);
  std::uint64_t ones_plain = 0, ones_dtp = 0;
  const int blocks = 2000;
  for (int i = 0; i < blocks; ++i) {
    ones_plain += static_cast<std::uint64_t>(
        __builtin_popcountll(s1.scramble_block(phy::make_idle_block()).payload));
    const Message m{MessageType::kBeacon, rng() & kDtpPayloadMask};
    ones_dtp += static_cast<std::uint64_t>(
        __builtin_popcountll(s2.scramble_block(dtp::encode_into_block(m)).payload));
  }
  EXPECT_NEAR(static_cast<double>(ones_dtp) / static_cast<double>(ones_plain), 1.0, 0.03);
}

TEST(PhyPipeline, CorruptedFrameCaughtByCrc) {
  Rng rng(504);
  net::Frame f;
  f.payload_bytes = 200;
  std::vector<std::uint8_t> payload(200);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform(256));
  auto bytes = net::serialize_frame(f, payload);

  phy::Scrambler s(7);
  phy::Descrambler d(7);
  auto blocks = phy::encode_frame(bytes);
  // Flip one wire bit mid-frame.
  std::vector<phy::Block> wire;
  for (const auto& b : blocks) wire.push_back(s.scramble_block(b));
  wire[wire.size() / 2].payload ^= 1ULL << 17;

  phy::FrameDecoder dec;
  std::vector<std::uint8_t> out;
  for (const auto& w : wire) {
    phy::Block b = d.descramble_block(w);
    if (b.is_idle_frame()) continue;
    if (dec.feed(b)) out = dec.take_frame();
  }
  ASSERT_FALSE(out.empty());
  EXPECT_FALSE(net::parse_frame(out).fcs_ok)
      << "a single wire bit flip must fail the FCS";
}

class PipelineSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineSeeds, RandomStreamsRoundTrip) {
  Rng rng(GetParam());
  std::vector<std::vector<std::uint8_t>> tx_frames;
  std::vector<Message> tx_messages;
  const auto stream = make_tx_stream(rng, tx_frames, tx_messages, 5);
  phy::Scrambler s(GetParam());
  phy::Descrambler d(GetParam());
  phy::FrameDecoder dec;
  std::size_t frames_seen = 0, messages_seen = 0;
  for (const auto& blk : stream) {
    phy::Block b = d.descramble_block(s.scramble_block(blk));
    if (b.is_idle_frame()) {
      messages_seen += dtp::decode_from_block(b).has_value();
      continue;
    }
    if (dec.feed(b)) {
      EXPECT_EQ(dec.take_frame(), tx_frames[frames_seen]);
      ++frames_seen;
    }
  }
  EXPECT_EQ(frames_seen, tx_frames.size());
  EXPECT_EQ(messages_seen, tx_messages.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSeeds, ::testing::Range<std::uint64_t>(600, 610));

}  // namespace
}  // namespace dtpsim
