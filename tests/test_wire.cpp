/// Byte-level wire-format conformance: IPv4/UDP, PTPv2, NTPv4 round trips,
/// checksum behaviour, and a full-stack encapsulation walk: NTP packet ->
/// UDP -> Ethernet frame -> 64b/66b PCS -> scrambler -> back up.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/frame.hpp"
#include "net/wire.hpp"
#include "ntp/wire.hpp"
#include "phy/pcs.hpp"
#include "phy/scrambler.hpp"
#include "ptp/wire.hpp"

namespace dtpsim {
namespace {

TEST(InternetChecksum, Rfc1071Example) {
  // Classic example from RFC 1071 section 3.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(net::internet_checksum(data, 8), 0xFFFF - 0xddf2);
}

TEST(InternetChecksum, ValidPacketSumsToZero) {
  Rng rng(81);
  std::vector<std::uint8_t> data(20);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform(256));
  data[10] = data[11] = 0;
  const std::uint16_t c = net::internet_checksum(data.data(), data.size());
  data[10] = static_cast<std::uint8_t>(c >> 8);
  data[11] = static_cast<std::uint8_t>(c & 0xFF);
  EXPECT_EQ(net::internet_checksum(data.data(), data.size()), 0);
}

TEST(UdpCodec, RoundTrip) {
  net::UdpHeader h;
  h.src_ip = 0x0A000001;
  h.dst_ip = 0x0A000002;
  h.src_port = 319;
  h.dst_port = 320;
  std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const auto bytes = net::encode_udp(h, payload);
  EXPECT_EQ(bytes.size(), net::kIpv4HeaderBytes + net::kUdpHeaderBytes + payload.size());

  const auto parsed = net::parse_udp(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->ip_checksum_ok);
  EXPECT_TRUE(parsed->udp_checksum_ok);
  EXPECT_EQ(parsed->header.src_ip, h.src_ip);
  EXPECT_EQ(parsed->header.dst_ip, h.dst_ip);
  EXPECT_EQ(parsed->header.src_port, h.src_port);
  EXPECT_EQ(parsed->header.dst_port, h.dst_port);
  EXPECT_EQ(parsed->payload, payload);
}

TEST(UdpCodec, OddLengthPayload) {
  net::UdpHeader h;
  h.src_ip = 1;
  h.dst_ip = 2;
  std::vector<std::uint8_t> payload = {9, 8, 7};
  const auto parsed = net::parse_udp(net::encode_udp(h, payload));
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed->udp_checksum_ok);
  EXPECT_EQ(parsed->payload, payload);
}

TEST(UdpCodec, CorruptionFlagsChecksums) {
  net::UdpHeader h;
  h.src_ip = 0x0A000001;
  h.dst_ip = 0x0A000002;
  auto bytes = net::encode_udp(h, {1, 2, 3, 4});
  auto ip_bad = bytes;
  ip_bad[8] ^= 0xFF;  // TTL inside the IP header
  auto p1 = net::parse_udp(ip_bad);
  ASSERT_TRUE(p1);
  EXPECT_FALSE(p1->ip_checksum_ok);

  auto udp_bad = bytes;
  udp_bad.back() ^= 0x01;  // payload byte
  auto p2 = net::parse_udp(udp_bad);
  ASSERT_TRUE(p2);
  EXPECT_FALSE(p2->udp_checksum_ok);
}

TEST(UdpCodec, StructurallyInvalidRejected) {
  EXPECT_FALSE(net::parse_udp({1, 2, 3}).has_value());
  net::UdpHeader h;
  auto bytes = net::encode_udp(h, {1});
  bytes[0] = 0x65;  // IPv6 version nibble
  EXPECT_FALSE(net::parse_udp(bytes).has_value());
  bytes[0] = 0x45;
  bytes[9] = 6;  // TCP
  EXPECT_FALSE(net::parse_udp(bytes).has_value());
}

TEST(PtpWire, SyncRoundTrip) {
  ptp::PtpMessage m;
  m.type = ptp::PtpType::kSync;
  m.sequence = 0xBEEF;
  m.clock_identity = 0x0011223344556677ULL;
  m.timestamp_ns = 1.5e9 + 123456789.0;
  const auto bytes = ptp::encode_ptp(m, 42.5);
  EXPECT_EQ(bytes.size(), 44u);  // the standard Sync length

  const auto p = ptp::parse_ptp(bytes);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->msg.type, ptp::PtpType::kSync);
  EXPECT_EQ(p->msg.sequence, 0xBEEF);
  EXPECT_EQ(p->msg.clock_identity, 0x0011223344556677ULL);
  EXPECT_NEAR(p->msg.timestamp_ns, m.timestamp_ns, 1.0);
  EXPECT_NEAR(p->correction_ns, 42.5, 1e-4);
}

TEST(PtpWire, AllTypesRoundTrip) {
  Rng rng(82);
  for (auto type : {ptp::PtpType::kSync, ptp::PtpType::kDelayReq, ptp::PtpType::kFollowUp,
                    ptp::PtpType::kDelayResp, ptp::PtpType::kAnnounce}) {
    ptp::PtpMessage m;
    m.type = type;
    m.sequence = static_cast<std::uint16_t>(rng.uniform(65536));
    m.clock_identity = rng();
    m.timestamp_ns = static_cast<double>(rng.uniform(1'000'000'000));
    m.priority = static_cast<std::uint8_t>(rng.uniform(256));
    m.requester = net::MacAddr{rng() & 0xFFFF'FFFF'FFFFULL};
    const auto p = ptp::parse_ptp(ptp::encode_ptp(m));
    ASSERT_TRUE(p) << static_cast<int>(type);
    EXPECT_EQ(p->msg.type, type);
    EXPECT_EQ(p->msg.sequence, m.sequence);
    EXPECT_NEAR(p->msg.timestamp_ns, m.timestamp_ns, 1.0);
    if (type == ptp::PtpType::kDelayResp) EXPECT_EQ(p->msg.requester, m.requester);
    if (type == ptp::PtpType::kAnnounce) EXPECT_EQ(p->msg.priority, m.priority);
  }
}

TEST(PtpWire, NegativeCorrectionSurvives) {
  ptp::PtpMessage m;
  m.type = ptp::PtpType::kSync;
  const auto p = ptp::parse_ptp(ptp::encode_ptp(m, -17.25));
  ASSERT_TRUE(p);
  EXPECT_NEAR(p->correction_ns, -17.25, 1e-4);
}

TEST(PtpWire, MalformedRejected) {
  EXPECT_FALSE(ptp::parse_ptp({1, 2, 3}).has_value());
  ptp::PtpMessage m;
  m.type = ptp::PtpType::kSync;
  auto bytes = ptp::encode_ptp(m);
  bytes[1] = 0x01;  // PTPv1
  EXPECT_FALSE(ptp::parse_ptp(bytes).has_value());
  bytes[1] = 0x02;
  bytes[0] = 0x07;  // unknown message type
  EXPECT_FALSE(ptp::parse_ptp(bytes).has_value());
}

TEST(NtpWire, TimestampConversion) {
  // 1 s + 0.5 s in 32.32 fixed point.
  const std::uint64_t ts = ntp::ns_to_ntp_timestamp(1.5e9);
  EXPECT_EQ(ts >> 32, 1u);
  EXPECT_EQ(ts & 0xFFFFFFFF, 0x80000000u);
  EXPECT_NEAR(ntp::ntp_timestamp_to_ns(ts), 1.5e9, 1.0);
}

TEST(NtpWire, RoundTrip) {
  ntp::NtpMessage m;
  m.response = true;
  m.t1_ns = 1.25e9;
  m.t2_ns = 2.5e9;
  m.t3_ns = 2.500001e9;
  const auto bytes = ntp::encode_ntp(m, /*stratum=*/1);
  EXPECT_EQ(bytes.size(), ntp::kNtpPacketBytes);
  const auto p = ntp::parse_ntp(bytes);
  ASSERT_TRUE(p);
  EXPECT_TRUE(p->msg.response);
  EXPECT_EQ(p->stratum, 1);
  EXPECT_EQ(p->version, 4);
  EXPECT_NEAR(p->msg.t1_ns, m.t1_ns, 1.0);
  EXPECT_NEAR(p->msg.t2_ns, m.t2_ns, 1.0);
  EXPECT_NEAR(p->msg.t3_ns, m.t3_ns, 1.0);
}

TEST(NtpWire, ClientModeAndRejects) {
  ntp::NtpMessage req;
  req.t1_ns = 7e9;
  const auto p = ntp::parse_ntp(ntp::encode_ntp(req));
  ASSERT_TRUE(p);
  EXPECT_FALSE(p->msg.response);
  EXPECT_EQ(p->stratum, 0);
  EXPECT_FALSE(ntp::parse_ntp(std::vector<std::uint8_t>(10)).has_value());
  auto bad = ntp::encode_ntp(req);
  bad[0] = (4 << 3) | 5;  // broadcast mode: unsupported here
  EXPECT_FALSE(ntp::parse_ntp(bad).has_value());
}

TEST(FullStack, NtpThroughUdpFramePcsScrambler) {
  // The whole encapsulation, byte-exact: NTP -> UDP/IP -> Ethernet frame
  // (real CRC) -> 64b/66b blocks -> scrambled wire -> back up.
  ntp::NtpMessage m;
  m.response = true;
  m.t1_ns = 1e9;
  m.t2_ns = 2e9;
  m.t3_ns = 3e9;
  net::UdpHeader uh;
  uh.src_ip = 0x0A000001;
  uh.dst_ip = 0x0A0000FE;
  uh.src_port = ntp::kNtpPort;
  uh.dst_port = 50000;
  const auto udp_bytes = net::encode_udp(uh, ntp::encode_ntp(m, 1));

  net::Frame f;
  f.dst = net::MacAddr{0x00AABBCCDDEEULL};
  f.src = net::MacAddr{0x001122334455ULL};
  f.ethertype = net::kEtherTypeIpv4;
  f.payload_bytes = static_cast<std::uint32_t>(udp_bytes.size());
  const auto frame_bytes = net::serialize_frame(f, udp_bytes);

  phy::Scrambler scr(0xD7);
  phy::Descrambler dscr(0xD7);
  phy::FrameDecoder dec;
  std::vector<std::uint8_t> rx_frame;
  for (const auto& b : phy::encode_frame(frame_bytes)) {
    if (dec.feed(dscr.descramble_block(scr.scramble_block(b))))
      rx_frame = dec.take_frame();
  }
  ASSERT_FALSE(rx_frame.empty());

  const auto parsed_frame = net::parse_frame(rx_frame);
  ASSERT_TRUE(parsed_frame.fcs_ok);
  EXPECT_EQ(parsed_frame.ethertype, net::kEtherTypeIpv4);
  const auto parsed_udp = net::parse_udp(parsed_frame.payload);
  ASSERT_TRUE(parsed_udp);
  EXPECT_TRUE(parsed_udp->udp_checksum_ok);
  const auto parsed_ntp = ntp::parse_ntp(parsed_udp->payload);
  ASSERT_TRUE(parsed_ntp);
  EXPECT_NEAR(parsed_ntp->msg.t2_ns, 2e9, 1.0);
}

}  // namespace
}  // namespace dtpsim
