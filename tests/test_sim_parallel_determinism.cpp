/// Bit-exact equivalence of the parallel conservative engine (DESIGN.md §9):
/// running the Fig. 5 tree under MTU saturation + DTP + a chaos campaign on
/// 2..4 worker threads must reproduce the serial run exactly — per-device
/// offset traces, event counts per category, per-port frame/control counts,
/// agent adjustment counters, and chaos verdicts. The [parallel] label routes
/// this binary through the sanitize-threads preset (TSan).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "chaos/engine.hpp"
#include "chaos/plan.hpp"
#include "dtp/network.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace dtpsim::sim {
namespace {

using namespace dtpsim::literals;

/// Everything a run observably produces. Two runs are "the same simulation"
/// iff these compare equal.
struct RunResult {
  // offsets[sample][agent] = true counter offset vs agent 0, in units.
  std::vector<std::vector<long long>> offsets;
  std::uint64_t scheduled = 0;
  std::uint64_t executed = 0;
  std::uint64_t cancelled = 0;
  std::vector<std::uint64_t> by_category;
  std::vector<std::uint64_t> frames_sent;
  std::vector<std::uint64_t> control_sent;
  std::vector<std::uint64_t> adjustments;
  std::vector<std::uint64_t> resets;
  // (class, converged, reconverged_at) per chaos probe, in report order.
  std::vector<std::tuple<std::string, bool, fs_t>> verdicts;

  bool operator==(const RunResult&) const = default;
};

RunResult run_fig5(unsigned threads, int* shards_out = nullptr) {
  Simulator sim(42);
  net::NetworkParams np;
  // Metres of fiber make femtoseconds of lookahead: 1 us of propagation per
  // cable gives the partitioner a usable conservative window.
  np.cable.propagation_delay = from_us(1);
  net::Network net(sim, np);
  net::PaperTreeTopology topo = net::build_paper_tree(net);
  dtp::DtpNetwork dtp = dtp::enable_dtp(net);

  // MTU saturation pairs on distinct aggregation switches, so frames cross
  // the root (maximum cross-shard traffic under any partition).
  net::TrafficParams tp;
  tp.saturate = true;
  tp.frame_bytes = 1518;
  net.add_traffic(*topo.leaves[0], topo.leaves[5]->addr(), tp).start();
  net.add_traffic(*topo.leaves[3], topo.leaves[7]->addr(), tp).start();

  // A small campaign: one flap on a leaf link, one BER burst near the root.
  chaos::ChaosEngine chaos_eng(net, dtp, {});
  chaos::FaultPlan plan;
  plan.add(chaos::FaultSpec::link_flap(*topo.aggs[0], *topo.leaves[0],
                                       from_us(900), from_us(150)));
  plan.add(chaos::FaultSpec::ber_burst(*topo.root, *topo.aggs[1], from_us(1200),
                                       from_us(200), 1e-5));
  chaos_eng.schedule(plan);

  if (threads > 1) sim.set_threads(threads);
  if (shards_out != nullptr) *shards_out = static_cast<int>(sim.shard_count());

  RunResult r;
  const fs_t t_end = from_ms(3);
  while (sim.now() < t_end) {
    sim.run_until(sim.now() + from_us(100));
    std::vector<long long> row;
    for (std::size_t i = 1; i < dtp.size(); ++i)
      row.push_back(static_cast<long long>(
          dtp::true_offset_units(dtp.agent(0), dtp.agent(i), sim.now())));
    r.offsets.push_back(std::move(row));
  }

  const SimStats st = sim.stats();
  r.scheduled = st.scheduled;
  r.executed = st.executed;
  r.cancelled = st.cancelled;
  r.by_category.assign(st.executed_by_category,
                       st.executed_by_category + kEventCategoryCount);
  for (net::Device* d : net.devices()) {
    for (std::size_t p = 0; p < d->port_count(); ++p) {
      r.frames_sent.push_back(d->port(p).frames_sent());
      r.control_sent.push_back(d->port(p).control_blocks_sent());
    }
  }
  for (std::size_t i = 0; i < dtp.size(); ++i) {
    r.adjustments.push_back(dtp.agent(i).global_adjustments());
    r.resets.push_back(dtp.agent(i).counter_resets());
  }
  for (const chaos::ProbeResult& pr : chaos_eng.report().results())
    r.verdicts.emplace_back(pr.fault_class, pr.converged, pr.reconverged_at);
  return r;
}

class ParallelDeterminism : public ::testing::Test {
 protected:
  static const RunResult& serial() {
    static const RunResult r = run_fig5(1);
    return r;
  }
};

TEST_F(ParallelDeterminism, SerialBaselineIsSane) {
  const RunResult& s = serial();
  ASSERT_FALSE(s.offsets.empty());
  ASSERT_EQ(s.offsets.front().size(), 11u);  // 12 devices, offsets vs agent 0
  EXPECT_GT(s.executed, 100000u);
  EXPECT_EQ(s.verdicts.size(), 2u);
}

TEST_F(ParallelDeterminism, TwoThreadsMatchesSerial) {
  int shards = 0;
  const RunResult par = run_fig5(2, &shards);
  EXPECT_EQ(shards, 2);
  EXPECT_EQ(par, serial());
}

TEST_F(ParallelDeterminism, ThreeThreadsMatchesSerial) {
  int shards = 0;
  const RunResult par = run_fig5(3, &shards);
  EXPECT_GE(shards, 2);
  EXPECT_EQ(par, serial());
}

TEST_F(ParallelDeterminism, FourThreadsMatchesSerial) {
  int shards = 0;
  const RunResult par = run_fig5(4, &shards);
  EXPECT_GE(shards, 2);
  EXPECT_EQ(par, serial());
}

TEST_F(ParallelDeterminism, ParallelRunsAreStableAcrossRepeats) {
  // Same thread count twice: guards against schedule-dependent tie-breaks
  // (mailbox drain order must be unobservable, not merely serial-matching).
  EXPECT_EQ(run_fig5(4), run_fig5(4));
}

}  // namespace
}  // namespace dtpsim::sim
