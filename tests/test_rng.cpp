#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace dtpsim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Rng, UniformCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform_range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(17);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(19);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(31);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(37);
  for (int i = 0; i < 10'000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(41);
  double sum = 0, sum2 = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(5);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 1'000; ++i)
    if (c1() == c2()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ForkIsDeterministic) {
  Rng p1(99), p2(99);
  Rng a = p1.fork(7);
  Rng b = p2.fork(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SplitMix64KnownSequenceAdvances) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}

}  // namespace
}  // namespace dtpsim
