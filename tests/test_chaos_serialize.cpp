// Round-trip and strictness tests for the chaos plan <-> text serializer —
// the grammar every stress repro file embeds its fault schedule in.

#include <gtest/gtest.h>

#include "chaos/engine.hpp"
#include "chaos/serialize.hpp"
#include "dtp/network.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

using namespace dtpsim;

namespace {

chaos::FaultDescriptor sample_descriptor() {
  chaos::FaultDescriptor d;
  d.kind = chaos::FaultKind::kFlapStorm;
  d.a = "S1";
  d.b = "S4";
  d.at = from_ms(3);
  d.duration = from_us(40);
  d.count = 5;
  d.period = from_us(120);
  d.magnitude = 0.25;
  return d;
}

}  // namespace

TEST(ChaosSerialize, FaultLineRoundTripsEveryField) {
  chaos::FaultDescriptor d = sample_descriptor();
  d.probe_threshold_ticks = 6.5;
  d.probe_sample_period = from_us(3);
  d.probe_timeout = from_ms(2);
  d.label = "a label with spaces";

  const chaos::FaultDescriptor back = chaos::fault_from_line(chaos::fault_to_line(d));
  EXPECT_EQ(d, back);
}

TEST(ChaosSerialize, DoublesRoundTripBitExactly) {
  chaos::FaultDescriptor d = sample_descriptor();
  d.kind = chaos::FaultKind::kBerBurst;
  d.magnitude = 2.7182818284590452e-5;  // needs all 17 significant digits
  const chaos::FaultDescriptor back = chaos::fault_from_line(chaos::fault_to_line(d));
  EXPECT_EQ(d.magnitude, back.magnitude);
}

TEST(ChaosSerialize, NodeFaultOmitsSecondEndpoint) {
  chaos::FaultDescriptor d;
  d.kind = chaos::FaultKind::kNodeCrash;
  d.a = "S7";
  d.at = from_ms(4);
  d.duration = from_us(300);
  const std::string line = chaos::fault_to_line(d);
  EXPECT_EQ(line.find(" b="), std::string::npos) << line;
  EXPECT_EQ(d, chaos::fault_from_line(line));
}

TEST(ChaosSerialize, MalformedLinesThrow) {
  const char* bad[] = {
      "flt kind=link_flap a=x b=y at=0 dur=0 count=1 period=0 mag=0",  // bad head
      "fault kind=volcano a=x b=y at=0 dur=0 count=1 period=0 mag=0",  // bad kind
      "fault kind=link_flap a=x at=0 dur=0 count=1 period=0 mag=0",    // missing b
      "fault kind=link_flap a=x b=y at=0 dur=0 count=1 period=0",      // missing mag
      "fault kind=link_flap a=x b=y at=zero dur=0 count=1 period=0 mag=0",
      "fault kind=link_flap a=x b=y at=0 at=1 dur=0 count=1 period=0 mag=0",
      "fault kind=link_flap a=x b=y at=0 dur=0 count=1 period=0 mag=0 bogus=1",
      "fault kind=link_flap a=x b=y at=0 dur=0 count=1 period=0 mag=0 naked-token",
  };
  for (const char* line : bad)
    EXPECT_THROW(chaos::fault_from_line(line), std::invalid_argument) << line;
}

TEST(ChaosSerialize, PlanRoundTripsThroughALiveTopology) {
  sim::Simulator sim(11);
  net::Network net(sim);
  net::PaperTreeTopology topo = net::build_paper_tree(net);

  chaos::FaultPlan plan;
  plan.add(chaos::FaultSpec::link_flap(*topo.root, *topo.aggs[0], from_ms(3), from_us(80)));
  plan.add(chaos::FaultSpec::ber_burst(*topo.aggs[1], *topo.leaves[3], from_ms(4),
                                       from_us(150), 1e-5));
  plan.add(chaos::FaultSpec::node_crash(*topo.leaves[7], from_ms(5), from_us(250)));

  const std::string text = chaos::plan_to_text(plan);
  chaos::FaultPlan back = chaos::plan_from_text(text, net);

  ASSERT_EQ(back.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(back.faults[i].kind, plan.faults[i].kind);
    EXPECT_EQ(back.faults[i].link_a, plan.faults[i].link_a);
    EXPECT_EQ(back.faults[i].link_b, plan.faults[i].link_b);
    EXPECT_EQ(back.faults[i].device, plan.faults[i].device);
    EXPECT_EQ(back.faults[i].at, plan.faults[i].at);
    EXPECT_EQ(back.faults[i].duration, plan.faults[i].duration);
    EXPECT_EQ(back.faults[i].magnitude, plan.faults[i].magnitude);
  }
  // Serializing the parsed plan reproduces the text byte for byte.
  EXPECT_EQ(chaos::plan_to_text(back), text);
}

TEST(ChaosSerialize, SourceFaultsRoundTripThroughALiveTopology) {
  // The four source-level fault kinds ride the same grammar: the hosting
  // device name in a= (island_partition is a link fault: a= and b=), timing
  // in at/dur, flaps in count/period, the lie / alternate stratum in mag.
  sim::Simulator sim(14);
  net::Network net(sim);
  net::PaperTreeTopology topo = net::build_paper_tree(net);

  chaos::FaultPlan plan;
  plan.add(chaos::FaultSpec::gps_loss(*topo.leaves[0], from_ms(3), from_ms(1)));
  plan.add(chaos::FaultSpec::rogue_grandmaster(*topo.leaves[0], from_ms(5), 2000.0,
                                               from_ms(2), from_us(500)));
  plan.add(chaos::FaultSpec::island_partition(*topo.root, *topo.aggs[2], from_ms(8),
                                              from_ms(2)));
  plan.add(chaos::FaultSpec::stratum_flap(*topo.leaves[3], from_ms(11), 4,
                                          from_us(200), 5));

  const std::string text = chaos::plan_to_text(plan);
  for (const char* name :
       {"gps_loss", "rogue_grandmaster", "island_partition", "stratum_flap"})
    EXPECT_NE(text.find(std::string("kind=") + name), std::string::npos) << text;

  chaos::FaultPlan back = chaos::plan_from_text(text, net);
  ASSERT_EQ(back.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(back.faults[i].kind, plan.faults[i].kind);
    EXPECT_EQ(back.faults[i].device, plan.faults[i].device);
    EXPECT_EQ(back.faults[i].link_a, plan.faults[i].link_a);
    EXPECT_EQ(back.faults[i].link_b, plan.faults[i].link_b);
    EXPECT_EQ(back.faults[i].at, plan.faults[i].at);
    EXPECT_EQ(back.faults[i].duration, plan.faults[i].duration);
    EXPECT_EQ(back.faults[i].count, plan.faults[i].count);
    EXPECT_EQ(back.faults[i].period, plan.faults[i].period);
    EXPECT_EQ(back.faults[i].magnitude, plan.faults[i].magnitude);
  }
  EXPECT_EQ(chaos::plan_to_text(back), text);
}

TEST(ChaosSerialize, SourceFaultStrictness) {
  // island_partition is a link fault and must carry both endpoints; a
  // misspelled source kind fails loudly, never silently skips.
  EXPECT_THROW(
      chaos::fault_from_line(
          "fault kind=island_partition a=S0 at=0 dur=0 count=1 period=0 mag=0"),
      std::invalid_argument);
  EXPECT_THROW(
      chaos::fault_from_line(
          "fault kind=gps_lost a=S4 at=0 dur=0 count=1 period=0 mag=0"),
      std::invalid_argument);
}

TEST(ChaosSerialize, GrayFaultsRoundTripThroughALiveTopology) {
  // The four gray-failure kinds (DESIGN.md §15) are link faults riding the
  // same grammar: direction in a=/b= order, the magnitude knob in mag=
  // (stall / corruption probability), the latency / stall span in period=.
  sim::Simulator sim(15);
  net::Network net(sim);
  net::PaperTreeTopology topo = net::build_paper_tree(net);

  chaos::FaultPlan plan;
  plan.add(chaos::FaultSpec::asymmetric_delay(*topo.root, *topo.aggs[0], from_ms(3),
                                              from_ms(2), from_ns(52)));
  plan.add(chaos::FaultSpec::limping_port(*topo.leaves[2], *topo.aggs[0], from_ms(6),
                                          from_ms(2), 0.3, from_ns(90)));
  plan.add(chaos::FaultSpec::silent_corruption(*topo.leaves[4], *topo.aggs[1],
                                               from_ms(9), from_ms(2), 0.8));
  plan.add(chaos::FaultSpec::frozen_counter(*topo.leaves[6], *topo.aggs[2],
                                            from_ms(12), from_ms(2)));
  plan.faults.back().label = "gray:frozen_counter";
  plan.faults.back().probe_timeout = from_ms(5);

  const std::string text = chaos::plan_to_text(plan);
  for (const char* name : {"asymmetric_delay", "limping_port", "silent_corruption",
                           "frozen_counter"})
    EXPECT_NE(text.find(std::string("kind=") + name), std::string::npos) << text;

  chaos::FaultPlan back = chaos::plan_from_text(text, net);
  ASSERT_EQ(back.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(back.faults[i].kind, plan.faults[i].kind);
    EXPECT_EQ(back.faults[i].link_a, plan.faults[i].link_a);
    EXPECT_EQ(back.faults[i].link_b, plan.faults[i].link_b);
    EXPECT_EQ(back.faults[i].at, plan.faults[i].at);
    EXPECT_EQ(back.faults[i].duration, plan.faults[i].duration);
    EXPECT_EQ(back.faults[i].period, plan.faults[i].period);
    EXPECT_EQ(back.faults[i].magnitude, plan.faults[i].magnitude);
    EXPECT_EQ(back.faults[i].label, plan.faults[i].label);
    EXPECT_EQ(back.faults[i].probe_timeout, plan.faults[i].probe_timeout);
  }
  EXPECT_EQ(chaos::plan_to_text(back), text);
}

TEST(ChaosSerialize, GrayKindsRejectMisspellingsAndMissingEndpoints) {
  // Every gray kind is a link fault: a missing b= endpoint or an unknown
  // kind spelling must fail loudly — a dropped gray fault IS a gray failure.
  EXPECT_THROW(
      chaos::fault_from_line(
          "fault kind=frozen_counter a=S4 at=0 dur=1 count=1 period=0 mag=0"),
      std::invalid_argument);
  EXPECT_THROW(
      chaos::fault_from_line(
          "fault kind=asymetric_delay a=S0 b=S1 at=0 dur=1 count=1 period=50 mag=0"),
      std::invalid_argument);
  EXPECT_THROW(
      chaos::fault_from_line(
          "fault kind=limping a=S4 b=S1 at=0 dur=1 count=1 period=90 mag=0.3"),
      std::invalid_argument);
}

TEST(ChaosSerialize, UnresolvableDeviceNameThrows) {
  sim::Simulator sim(12);
  net::Network net(sim);
  net::build_paper_tree(net);

  chaos::FaultDescriptor d = sample_descriptor();
  d.a = "S99";
  EXPECT_THROW(chaos::realize(d, net), std::invalid_argument);
}

TEST(ChaosSerialize, PlanTextRequiresHeaderAndFooter) {
  sim::Simulator sim(13);
  net::Network net(sim);
  net::build_paper_tree(net);

  EXPECT_THROW(chaos::plan_from_text("dtp-chaos-plan v2\nend\n", net),
               std::invalid_argument);
  EXPECT_THROW(chaos::plan_from_text("dtp-chaos-plan v1\n", net), std::invalid_argument);
  EXPECT_NO_THROW(chaos::plan_from_text("dtp-chaos-plan v1\nend\n", net));
}
