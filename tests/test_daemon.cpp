#include "dtp/daemon.hpp"

#include <gtest/gtest.h>

#include "dtp/external.hpp"
#include "dtp_test_util.hpp"

namespace dtpsim::dtp {
namespace {

using namespace dtpsim::literals;
using testutil::TwoNodes;

DaemonParams fast_daemon() {
  DaemonParams dp;
  dp.poll_period = from_ms(20);
  dp.sample_period = from_ms(2);
  return dp;
}

TEST(Daemon, CalibratesAfterTwoPolls) {
  TwoNodes n(91, 50.0, -50.0);
  Daemon d(n.sim, *n.agent_a, fast_daemon(), 10.0);
  d.start();
  EXPECT_FALSE(d.calibrated());
  EXPECT_THROW(d.get_dtp_counter(0), std::logic_error);
  n.sim.run_until(100_ms);
  EXPECT_TRUE(d.calibrated());
  EXPECT_GE(d.polls(), 4u);
}

TEST(Daemon, EstimateTracksCounter) {
  TwoNodes n(92, 50.0, -50.0);
  Daemon d(n.sim, *n.agent_a, fast_daemon(), 10.0);
  d.start();
  n.sim.run_until(500_ms);
  const fs_t now = n.sim.now();
  const double est = d.get_dtp_counter(now);
  const double truth = n.agent_a->global_fractional_at(now);
  EXPECT_NEAR(est, truth, 120.0) << "within ~120 ticks even at a poll boundary";
}

TEST(Daemon, RawOffsetUsuallyWithin16Ticks) {
  // Fig. 7a: offset_sw usually <= 16 ticks (~102.4 ns) with spikes.
  TwoNodes n(93, 50.0, -50.0);
  Daemon d(n.sim, *n.agent_a, fast_daemon(), 25.0);
  d.start();
  n.sim.run_until(2_sec);
  const auto& pts = d.raw_series().points();
  ASSERT_GT(pts.size(), 500u);
  std::size_t within = 0;
  for (const auto& p : pts) within += std::abs(p.value) <= 16.0;
  EXPECT_GT(static_cast<double>(within) / static_cast<double>(pts.size()), 0.85)
      << "usually within 16 ticks";
}

TEST(Daemon, SmoothingTightensToFourTicks) {
  // Fig. 7b: window-10 moving average usually within 4 ticks.
  TwoNodes n(94, 50.0, -50.0);
  Daemon d(n.sim, *n.agent_a, fast_daemon(), 25.0);
  d.start();
  n.sim.run_until(2_sec);
  const auto& raw = d.raw_series().points();
  const auto& smooth = d.smoothed_series().points();
  ASSERT_EQ(raw.size(), smooth.size());
  std::size_t smooth_within = 0;
  for (std::size_t i = 0; i < smooth.size(); ++i)
    smooth_within += std::abs(smooth[i].value) <= 4.0;
  EXPECT_GT(static_cast<double>(smooth_within) / static_cast<double>(smooth.size()), 0.8);
  EXPECT_LE(d.smoothed_series().stats().stddev(), d.raw_series().stats().stddev())
      << "smoothing must not widen the spread";
}

TEST(Daemon, SpikesAppearInRawSeries) {
  DaemonParams dp = fast_daemon();
  dp.pcie_spike_prob = 0.3;  // force spikes
  dp.pcie_spike_mean = from_us(1);
  TwoNodes n(95, 0.0, 0.0);
  Daemon d(n.sim, *n.agent_a, dp, 0.0);
  d.start();
  n.sim.run_until(2_sec);
  EXPECT_GT(d.raw_series().stats().max_abs(), 30.0)
      << "PCIe spikes must show as large raw offsets";
}

TEST(Daemon, TimeInNsMatchesTickScale) {
  TwoNodes n(96, 0.0, 0.0);
  Daemon d(n.sim, *n.agent_a, fast_daemon(), 5.0);
  d.start();
  n.sim.run_until(1_sec);
  const double t_ns = d.get_time_ns(n.sim.now());
  // One second of 6.4 ns ticks ~ 1e9 ns on the counter.
  EXPECT_NEAR(t_ns, 1e9, 2e6);
}

TEST(Daemon, TwoDaemonsAgreeAcrossTheWire) {
  // The point of the whole system: software clocks on two hosts agree to
  // tens of ns because the hardware counters agree to 4 ticks.
  TwoNodes n(97, 100.0, -100.0);
  Daemon da(n.sim, *n.agent_a, fast_daemon(), 30.0);
  Daemon db(n.sim, *n.agent_b, fast_daemon(), -20.0);
  da.start();
  db.start();
  n.sim.run_until(2_sec);
  SampleSeries disagreement;
  testutil::run_sampled(n.sim, 3_sec, 10_ms, [&](fs_t t) {
    disagreement.add(da.get_dtp_counter(t) - db.get_dtp_counter(t));
  });
  // End-to-end: 4TD (hardware) + 8T (two software accesses) ~ 12 ticks for
  // D = 1, *usually* (PCIe spikes break it occasionally, as in Fig. 7a).
  EXPECT_LE(disagreement.percentile(90), 12.0);
  EXPECT_GE(disagreement.percentile(10), -12.0);
  EXPECT_LE(disagreement.max_abs(), 200.0);
  EXPECT_LE(std::abs(disagreement.mean()), 10.0);
}

TEST(ExternalSync, ClientLearnsUtc) {
  TwoNodes n(98, 50.0, -50.0);
  Daemon da(n.sim, *n.agent_a, fast_daemon(), 10.0);
  Daemon db(n.sim, *n.agent_b, fast_daemon(), -10.0);
  da.start();
  db.start();
  UtcBroadcaster bc(n.sim, *n.a, da, from_ms(200));
  UtcClient client(*n.b, db);
  bc.start();
  n.sim.run_until(3_sec);
  ASSERT_TRUE(client.ready());
  EXPECT_GT(client.pairs_received(), 5u);
  const fs_t now = n.sim.now();
  const double err_ns = (client.utc_at(now) - static_cast<double>(now)) /
                        static_cast<double>(kFsPerNs);
  EXPECT_LT(std::abs(err_ns), 1'000.0) << "UTC estimate within a microsecond";
}

TEST(ExternalSync, ErrorSeriesStaysSmall) {
  TwoNodes n(99, 50.0, -50.0);
  Daemon da(n.sim, *n.agent_a, fast_daemon(), 10.0);
  Daemon db(n.sim, *n.agent_b, fast_daemon(), -10.0);
  da.start();
  db.start();
  UtcBroadcaster bc(n.sim, *n.a, da, from_ms(200));
  UtcClient client(*n.b, db);
  bc.start();
  n.sim.run_until(5_sec);
  ASSERT_GT(client.error_series().points().size(), 10u);
  // Skip the first ratio estimates; steady state should be sub-us.
  const auto& pts = client.error_series().points();
  double worst = 0;
  for (std::size_t i = pts.size() / 2; i < pts.size(); ++i)
    worst = std::max(worst, std::abs(pts[i].value));
  EXPECT_LT(worst, 1'000.0) << "ns-scale UTC agreement in steady state";
}

TEST(ExternalSync, ServerUtcErrorPropagates) {
  // A GPS-grade server error (~100 ns) bounds what clients can achieve.
  TwoNodes n(100, 0.0, 0.0);
  Daemon da(n.sim, *n.agent_a, fast_daemon(), 0.0);
  Daemon db(n.sim, *n.agent_b, fast_daemon(), 0.0);
  da.start();
  db.start();
  UtcBroadcaster bc(n.sim, *n.a, da, from_ms(200), /*utc_error_ns=*/100.0);
  UtcClient client(*n.b, db);
  bc.start();
  n.sim.run_until(5_sec);
  ASSERT_TRUE(client.ready());
  const auto& pts = client.error_series().points();
  StreamingStats tail;
  for (std::size_t i = pts.size() / 2; i < pts.size(); ++i) tail.add(pts[i].value);
  EXPECT_GT(tail.stddev(), 1.0) << "server noise must be visible";
  EXPECT_LT(tail.max_abs(), 5'000.0);
}

// ---------------------------------------------------------------------------
// Clock-reading bugfix regressions (PR 10)
// ---------------------------------------------------------------------------

TEST(Daemon, RttFilterRelearnsAfterLatencyRegimeChange) {
  // Regression: best_rtt_ used to ratchet down forever, so any *permanent*
  // increase in PCIe latency (firmware update, bus renegotiation) made every
  // subsequent poll look like an outlier and the clock never re-anchored.
  // With a windowed minimum the filter must re-learn the new floor after
  // rtt_window_polls polls and resume accepting.
  TwoNodes n(201, 50.0, -50.0);
  DaemonParams dp;
  dp.poll_period = from_ms(1);
  dp.sample_period = 0;
  dp.rtt_window_polls = 16;
  Daemon d(n.sim, *n.agent_a, dp, 10.0);
  d.start();
  n.sim.run_until(50_ms);
  ASSERT_TRUE(d.calibrated());
  ASSERT_FALSE(d.stale(n.sim.now()));

  // A step change, not a storm: +600 ns on every MMIO leg, forever.
  d.set_pcie_stress(from_ns(600), 0.0, 0);
  n.sim.run_until(n.sim.now() + 100_ms);

  // The window has long since cycled: polls are being accepted again under
  // the new latency floor, and accuracy is back (the extra latency is
  // symmetric across the request/response legs, so the midpoint is honest).
  const fs_t now = n.sim.now();
  EXPECT_FALSE(d.stale(now)) << "filter never re-learned the new RTT floor";
  EXPECT_LE(d.anchor_age(now), 3 * dp.poll_period)
      << "polls are still being rejected against the stale pre-change floor";
  EXPECT_LT(d.current_error_ticks(now), 120.0);
}

TEST(Daemon, AnchorGoesStaleWithoutAcceptedPolls) {
  // Regression: get_dtp_counter() used to extrapolate from the last anchor
  // without bound — a daemon whose polls all failed would serve confidently
  // wrong time forever. The anchor-age cap must flag the clock (and its
  // page) stale while still serving, and a restart must bump the epoch.
  TwoNodes n(202, 50.0, -50.0);
  DaemonParams dp;
  dp.poll_period = from_ms(1);
  dp.sample_period = 0;
  dp.max_anchor_age = from_ms(4);
  Daemon d(n.sim, *n.agent_a, dp, 10.0);

  // Before any poll there is no anchor at all.
  EXPECT_EQ(d.anchor_age(n.sim.now()), -1);
  EXPECT_TRUE(d.stale(n.sim.now()));

  d.start();
  n.sim.run_until(20_ms);
  ASSERT_TRUE(d.calibrated());
  EXPECT_FALSE(d.stale(n.sim.now()));
  const TimebaseSample fresh = d.timebase_sample(n.sim.now());
  ASSERT_TRUE(fresh.valid);
  EXPECT_FALSE(fresh.stale);

  // Stop polling entirely; the anchor ages past the cap.
  d.stop();
  n.sim.run_until(n.sim.now() + 20_ms);
  const fs_t now = n.sim.now();
  EXPECT_GT(d.anchor_age(now), dp.max_anchor_age);
  EXPECT_TRUE(d.stale(now));
  EXPECT_NO_THROW(d.get_dtp_counter(now)) << "a stale clock still serves";
  const TimebaseSample old = d.timebase_sample(now);
  EXPECT_TRUE(old.valid);
  EXPECT_TRUE(old.stale) << "staleness must reach page readers";
  EXPECT_GT(old.uncertainty_units, fresh.uncertainty_units)
      << "the claimed bound must grow while coasting";

  // Restart: fresh polls clear the flag and the epoch moves so readers can
  // tell a recovery from a continuously serving daemon.
  d.start();
  n.sim.run_until(n.sim.now() + 10_ms);
  const TimebaseSample back = d.timebase_sample(n.sim.now());
  EXPECT_FALSE(d.stale(n.sim.now()));
  EXPECT_FALSE(back.stale);
  EXPECT_EQ(back.epoch, fresh.epoch + 1);
}

TEST(Daemon, SplitCounterKeepsTickPrecisionPastDoubleCliff) {
  // Regression: the double returned by get_dtp_counter() quantizes to
  // 256-unit steps once the network counter passes 2^60 (a few months of
  // uptime at 156.25 MHz). The split API must keep integer-unit accuracy.
  TwoNodes n(203, 50.0, -50.0);
  n.sim.run_until(2_ms);
  n.agent_a->force_global(n.sim.now(), WideCounter(std::uint64_t{1} << 60));
  n.agent_a->port_logic(0).send_join();
  n.sim.run_until(4_ms);

  DaemonParams dp;
  dp.poll_period = from_ms(1);
  dp.sample_period = 0;
  Daemon d(n.sim, *n.agent_a, dp, 10.0);
  d.start();
  n.sim.run_until(200_ms);
  ASSERT_TRUE(d.calibrated());

  const fs_t now = n.sim.now();
  const CounterReading r = d.get_dtp_counter_split(now);
  EXPECT_GT(r.units, std::int64_t{1} << 60);
  EXPECT_GE(r.frac, 0.0);
  EXPECT_LT(r.frac, 1.0);
  // Exact integer differencing against the hardware counter: still within
  // the normal poll-boundary envelope, far below the 256-unit double ulp.
  EXPECT_LT(d.current_error_ticks(now), 120.0);
  // And the double view is indeed the lossy one at this magnitude.
  const double dbl = d.get_dtp_counter(now);
  EXPECT_EQ(dbl, dbl + 1.0) << "double view must be quantized here";
}

}  // namespace
}  // namespace dtpsim::dtp
