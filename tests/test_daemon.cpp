#include "dtp/daemon.hpp"

#include <gtest/gtest.h>

#include "dtp/external.hpp"
#include "dtp_test_util.hpp"

namespace dtpsim::dtp {
namespace {

using namespace dtpsim::literals;
using testutil::TwoNodes;

DaemonParams fast_daemon() {
  DaemonParams dp;
  dp.poll_period = from_ms(20);
  dp.sample_period = from_ms(2);
  return dp;
}

TEST(Daemon, CalibratesAfterTwoPolls) {
  TwoNodes n(91, 50.0, -50.0);
  Daemon d(n.sim, *n.agent_a, fast_daemon(), 10.0);
  d.start();
  EXPECT_FALSE(d.calibrated());
  EXPECT_THROW(d.get_dtp_counter(0), std::logic_error);
  n.sim.run_until(100_ms);
  EXPECT_TRUE(d.calibrated());
  EXPECT_GE(d.polls(), 4u);
}

TEST(Daemon, EstimateTracksCounter) {
  TwoNodes n(92, 50.0, -50.0);
  Daemon d(n.sim, *n.agent_a, fast_daemon(), 10.0);
  d.start();
  n.sim.run_until(500_ms);
  const fs_t now = n.sim.now();
  const double est = d.get_dtp_counter(now);
  const double truth = n.agent_a->global_fractional_at(now);
  EXPECT_NEAR(est, truth, 120.0) << "within ~120 ticks even at a poll boundary";
}

TEST(Daemon, RawOffsetUsuallyWithin16Ticks) {
  // Fig. 7a: offset_sw usually <= 16 ticks (~102.4 ns) with spikes.
  TwoNodes n(93, 50.0, -50.0);
  Daemon d(n.sim, *n.agent_a, fast_daemon(), 25.0);
  d.start();
  n.sim.run_until(2_sec);
  const auto& pts = d.raw_series().points();
  ASSERT_GT(pts.size(), 500u);
  std::size_t within = 0;
  for (const auto& p : pts) within += std::abs(p.value) <= 16.0;
  EXPECT_GT(static_cast<double>(within) / static_cast<double>(pts.size()), 0.85)
      << "usually within 16 ticks";
}

TEST(Daemon, SmoothingTightensToFourTicks) {
  // Fig. 7b: window-10 moving average usually within 4 ticks.
  TwoNodes n(94, 50.0, -50.0);
  Daemon d(n.sim, *n.agent_a, fast_daemon(), 25.0);
  d.start();
  n.sim.run_until(2_sec);
  const auto& raw = d.raw_series().points();
  const auto& smooth = d.smoothed_series().points();
  ASSERT_EQ(raw.size(), smooth.size());
  std::size_t smooth_within = 0;
  for (std::size_t i = 0; i < smooth.size(); ++i)
    smooth_within += std::abs(smooth[i].value) <= 4.0;
  EXPECT_GT(static_cast<double>(smooth_within) / static_cast<double>(smooth.size()), 0.8);
  EXPECT_LE(d.smoothed_series().stats().stddev(), d.raw_series().stats().stddev())
      << "smoothing must not widen the spread";
}

TEST(Daemon, SpikesAppearInRawSeries) {
  DaemonParams dp = fast_daemon();
  dp.pcie_spike_prob = 0.3;  // force spikes
  dp.pcie_spike_mean = from_us(1);
  TwoNodes n(95, 0.0, 0.0);
  Daemon d(n.sim, *n.agent_a, dp, 0.0);
  d.start();
  n.sim.run_until(2_sec);
  EXPECT_GT(d.raw_series().stats().max_abs(), 30.0)
      << "PCIe spikes must show as large raw offsets";
}

TEST(Daemon, TimeInNsMatchesTickScale) {
  TwoNodes n(96, 0.0, 0.0);
  Daemon d(n.sim, *n.agent_a, fast_daemon(), 5.0);
  d.start();
  n.sim.run_until(1_sec);
  const double t_ns = d.get_time_ns(n.sim.now());
  // One second of 6.4 ns ticks ~ 1e9 ns on the counter.
  EXPECT_NEAR(t_ns, 1e9, 2e6);
}

TEST(Daemon, TwoDaemonsAgreeAcrossTheWire) {
  // The point of the whole system: software clocks on two hosts agree to
  // tens of ns because the hardware counters agree to 4 ticks.
  TwoNodes n(97, 100.0, -100.0);
  Daemon da(n.sim, *n.agent_a, fast_daemon(), 30.0);
  Daemon db(n.sim, *n.agent_b, fast_daemon(), -20.0);
  da.start();
  db.start();
  n.sim.run_until(2_sec);
  SampleSeries disagreement;
  testutil::run_sampled(n.sim, 3_sec, 10_ms, [&](fs_t t) {
    disagreement.add(da.get_dtp_counter(t) - db.get_dtp_counter(t));
  });
  // End-to-end: 4TD (hardware) + 8T (two software accesses) ~ 12 ticks for
  // D = 1, *usually* (PCIe spikes break it occasionally, as in Fig. 7a).
  EXPECT_LE(disagreement.percentile(90), 12.0);
  EXPECT_GE(disagreement.percentile(10), -12.0);
  EXPECT_LE(disagreement.max_abs(), 200.0);
  EXPECT_LE(std::abs(disagreement.mean()), 10.0);
}

TEST(ExternalSync, ClientLearnsUtc) {
  TwoNodes n(98, 50.0, -50.0);
  Daemon da(n.sim, *n.agent_a, fast_daemon(), 10.0);
  Daemon db(n.sim, *n.agent_b, fast_daemon(), -10.0);
  da.start();
  db.start();
  UtcBroadcaster bc(n.sim, *n.a, da, from_ms(200));
  UtcClient client(*n.b, db);
  bc.start();
  n.sim.run_until(3_sec);
  ASSERT_TRUE(client.ready());
  EXPECT_GT(client.pairs_received(), 5u);
  const fs_t now = n.sim.now();
  const double err_ns = (client.utc_at(now) - static_cast<double>(now)) /
                        static_cast<double>(kFsPerNs);
  EXPECT_LT(std::abs(err_ns), 1'000.0) << "UTC estimate within a microsecond";
}

TEST(ExternalSync, ErrorSeriesStaysSmall) {
  TwoNodes n(99, 50.0, -50.0);
  Daemon da(n.sim, *n.agent_a, fast_daemon(), 10.0);
  Daemon db(n.sim, *n.agent_b, fast_daemon(), -10.0);
  da.start();
  db.start();
  UtcBroadcaster bc(n.sim, *n.a, da, from_ms(200));
  UtcClient client(*n.b, db);
  bc.start();
  n.sim.run_until(5_sec);
  ASSERT_GT(client.error_series().points().size(), 10u);
  // Skip the first ratio estimates; steady state should be sub-us.
  const auto& pts = client.error_series().points();
  double worst = 0;
  for (std::size_t i = pts.size() / 2; i < pts.size(); ++i)
    worst = std::max(worst, std::abs(pts[i].value));
  EXPECT_LT(worst, 1'000.0) << "ns-scale UTC agreement in steady state";
}

TEST(ExternalSync, ServerUtcErrorPropagates) {
  // A GPS-grade server error (~100 ns) bounds what clients can achieve.
  TwoNodes n(100, 0.0, 0.0);
  Daemon da(n.sim, *n.agent_a, fast_daemon(), 0.0);
  Daemon db(n.sim, *n.agent_b, fast_daemon(), 0.0);
  da.start();
  db.start();
  UtcBroadcaster bc(n.sim, *n.a, da, from_ms(200), /*utc_error_ns=*/100.0);
  UtcClient client(*n.b, db);
  bc.start();
  n.sim.run_until(5_sec);
  ASSERT_TRUE(client.ready());
  const auto& pts = client.error_series().points();
  StreamingStats tail;
  for (std::size_t i = pts.size() / 2; i < pts.size(); ++i) tail.add(pts[i].value);
  EXPECT_GT(tail.stddev(), 1.0) << "server noise must be visible";
  EXPECT_LT(tail.max_abs(), 5'000.0);
}

}  // namespace
}  // namespace dtpsim::dtp
