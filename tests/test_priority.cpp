/// 802.1p strict-priority egress queueing — the "cut-through switches with
/// priority flow control" context the paper cites around its PTP results.

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "ptp/client.hpp"
#include "ptp/grandmaster.hpp"
#include "sim/simulator.hpp"

namespace dtpsim::net {
namespace {

using namespace dtpsim::literals;

NetworkParams prio_params(std::size_t queues) {
  NetworkParams np;
  np.mac.priority_queues = queues;
  return np;
}

TEST(Priority, HighClassOvertakesBacklog) {
  sim::Simulator sim(401);
  Network net(sim, prio_params(2));
  auto& a = net.add_host("a");
  auto& b = net.add_host("b");
  net.connect(a, b);

  std::vector<std::uint8_t> arrival_order;
  b.on_hw_receive = [&](const Frame& f, fs_t) { arrival_order.push_back(f.priority); };

  // Fill the low-priority queue with bulk, then send one priority-7 frame.
  Frame bulk;
  bulk.dst = b.addr();
  bulk.payload_bytes = 1500;
  for (int i = 0; i < 20; ++i) a.send_hw(bulk);
  Frame urgent = bulk;
  urgent.payload_bytes = 46;
  urgent.priority = 7;
  a.send_hw(urgent);

  sim.run_until(1_ms);
  ASSERT_EQ(arrival_order.size(), 21u);
  // The urgent frame cannot preempt the frame already on the wire, but it
  // must beat the rest of the backlog.
  EXPECT_EQ(arrival_order[1], 7) << "priority frame served right after the in-flight one";
}

TEST(Priority, SingleQueueIsFifo) {
  sim::Simulator sim(402);
  Network net(sim, prio_params(1));
  auto& a = net.add_host("a");
  auto& b = net.add_host("b");
  net.connect(a, b);
  std::vector<std::uint8_t> arrival_order;
  b.on_hw_receive = [&](const Frame& f, fs_t) { arrival_order.push_back(f.priority); };
  Frame bulk;
  bulk.dst = b.addr();
  bulk.payload_bytes = 1500;
  for (int i = 0; i < 5; ++i) a.send_hw(bulk);
  Frame urgent = bulk;
  urgent.priority = 7;
  a.send_hw(urgent);
  sim.run_until(1_ms);
  ASSERT_EQ(arrival_order.size(), 6u);
  EXPECT_EQ(arrival_order.back(), 7) << "one queue: strict FIFO, no overtaking";
}

TEST(Priority, ClassMappingCoversRange) {
  sim::Simulator sim(403);
  Network net(sim, prio_params(2));
  auto& a = net.add_host("a");
  auto& b = net.add_host("b");
  net.connect(a, b);
  // Priorities 0-3 share the low queue, 4-7 the high one: a priority-3
  // frame must NOT overtake priority-0 backlog.
  std::vector<std::uint8_t> order;
  b.on_hw_receive = [&](const Frame& f, fs_t) { order.push_back(f.priority); };
  Frame f;
  f.dst = b.addr();
  f.payload_bytes = 1500;
  for (int i = 0; i < 5; ++i) a.send_hw(f);
  Frame mid = f;
  mid.priority = 3;
  a.send_hw(mid);
  sim.run_until(1_ms);
  EXPECT_EQ(order.back(), 3);
}

TEST(Priority, PerClassCapacityIndependent) {
  sim::Simulator sim(404);
  NetworkParams np = prio_params(2);
  np.mac.queue_capacity_bytes = 8000;  // 4000 per class: ~2 MTU frames each
  Network net(sim, np);
  auto& a = net.add_host("a");
  auto& b = net.add_host("b");
  net.connect(a, b);
  Frame f;
  f.dst = b.addr();
  f.payload_bytes = 1500;
  int low_ok = 0;
  for (int i = 0; i < 10; ++i) low_ok += a.nic().enqueue(f);
  EXPECT_LT(low_ok, 10) << "low class must overflow";
  Frame hi = f;
  hi.priority = 7;
  EXPECT_TRUE(a.nic().enqueue(hi)) << "high class unaffected by low-class overflow";
}

TEST(Priority, PrioritizedPtpResistsCongestion) {
  // Fig. 6e/6f's mechanism disappears when PTP rides the high class: Sync
  // messages bypass the bulk queues entirely.
  auto run = [](bool prioritize) {
    sim::Simulator sim(405);
    NetworkParams np = prio_params(2);
    np.enable_drift = true;
    np.drift.step_ppm = 0.01;
    np.drift.update_interval = from_ms(10);
    Network net(sim, np);
    auto star = build_star(net, 4);
    ptp::GrandmasterParams gp;
    gp.sync_interval = from_ms(250);
    gp.cos = prioritize ? 7 : 0;
    ptp::Grandmaster gm(sim, *star.hosts[0], gp);
    ptp::PtpClientParams cp;
    cp.delay_req_interval = from_ms(187);
    cp.cos = prioritize ? 7 : 0;
    ptp::PtpClient client(sim, *star.hosts[3], gm.phc(), cp);
    gm.start();
    client.start();
    sim.run_until(from_sec(6));
    // Fan-in congestion onto the client's downlink.
    TrafficParams tp;
    tp.saturate = true;
    net.add_traffic(*star.hosts[1], star.hosts[3]->addr(), tp).start();
    net.add_traffic(*star.hosts[2], star.hosts[3]->addr(), tp).start();
    sim.run_until(from_sec(12));
    const auto& pts = client.true_series().points();
    double worst = 0;
    for (std::size_t i = pts.size() * 7 / 10; i < pts.size(); ++i)
      worst = std::max(worst, std::abs(pts[i].value));
    return worst;
  };
  const double best_effort = run(false);
  const double prioritized = run(true);
  EXPECT_GT(best_effort, 20'000.0) << "best-effort PTP collapses under fan-in";
  EXPECT_LT(prioritized, best_effort / 20)
      << "priority queuing must rescue most of the error";
}

}  // namespace
}  // namespace dtpsim::net
