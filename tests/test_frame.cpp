#include "net/frame.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/crc32.hpp"

namespace dtpsim::net {
namespace {

TEST(MacAddr, Broadcast) {
  EXPECT_TRUE(MacAddr::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddr::broadcast().is_multicast());
  EXPECT_FALSE(MacAddr{0x1}.is_broadcast());
}

TEST(MacAddr, MulticastBit) {
  EXPECT_TRUE(MacAddr{0x0180'C200'000EULL}.is_multicast());  // LLDP-style
  EXPECT_FALSE(MacAddr{0x0280'C200'000EULL}.is_multicast());
}

TEST(MacAddr, ToString) {
  EXPECT_EQ(MacAddr{0x0011'2233'4455ULL}.to_string(), "00:11:22:33:44:55");
}

TEST(MacAddr, HashDistinguishes) {
  MacAddrHash h;
  EXPECT_NE(h(MacAddr{1}), h(MacAddr{2}));
}

TEST(Frame, SizeAccounting) {
  Frame f;
  f.payload_bytes = 1500;
  EXPECT_EQ(f.frame_bytes(), 1518u);
  EXPECT_EQ(f.wire_bytes(), 1526u);
}

TEST(Frame, MinimumSizeEnforced) {
  Frame f;
  f.payload_bytes = 1;
  EXPECT_EQ(f.frame_bytes(), kMinFrameBytes);
}

TEST(Crc32, KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926.
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data, 9), 0xCBF43926u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  Rng rng(1);
  std::vector<std::uint8_t> data(1000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform(256));
  std::uint32_t state = kCrc32Init;
  state = crc32_update(state, data.data(), 400);
  state = crc32_update(state, data.data() + 400, 600);
  EXPECT_EQ(crc32_finish(state), crc32(data.data(), data.size()));
}

TEST(Crc32, DetectsSingleBitFlip) {
  Rng rng(2);
  std::vector<std::uint8_t> data(64);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform(256));
  const std::uint32_t good = crc32(data.data(), data.size());
  data[10] ^= 0x04;
  EXPECT_NE(crc32(data.data(), data.size()), good);
}

TEST(FrameCodec, RoundTrip) {
  Frame f;
  f.dst = MacAddr{0x00AA'BBCC'DDEEULL};
  f.src = MacAddr{0x0011'2233'4455ULL};
  f.ethertype = kEtherTypeTest;
  f.payload_bytes = 100;
  std::vector<std::uint8_t> payload(100);
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<std::uint8_t>(i);

  const auto bytes = serialize_frame(f, payload);
  EXPECT_EQ(bytes.size(), f.frame_bytes());

  const auto parsed = parse_frame(bytes);
  EXPECT_TRUE(parsed.fcs_ok);
  EXPECT_EQ(parsed.dst, f.dst);
  EXPECT_EQ(parsed.src, f.src);
  EXPECT_EQ(parsed.ethertype, f.ethertype);
  EXPECT_EQ(parsed.payload, payload);
}

TEST(FrameCodec, PadsToMinimum) {
  Frame f;
  f.payload_bytes = 1;
  const auto bytes = serialize_frame(f, {0x42});
  EXPECT_EQ(bytes.size(), kMinFrameBytes);
  EXPECT_TRUE(parse_frame(bytes).fcs_ok);
}

TEST(FrameCodec, CorruptionFailsFcs) {
  Frame f;
  f.payload_bytes = 46;
  auto bytes = serialize_frame(f, std::vector<std::uint8_t>(46, 0x55));
  bytes[20] ^= 0x01;
  EXPECT_FALSE(parse_frame(bytes).fcs_ok);
}

TEST(FrameCodec, PayloadSizeMismatchThrows) {
  Frame f;
  f.payload_bytes = 10;
  EXPECT_THROW(serialize_frame(f, std::vector<std::uint8_t>(9)), std::invalid_argument);
}

TEST(FrameCodec, ShortFrameRejected) {
  EXPECT_THROW(parse_frame(std::vector<std::uint8_t>(10)), std::invalid_argument);
}

}  // namespace
}  // namespace dtpsim::net
