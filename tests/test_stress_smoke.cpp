// The fuzzer batch gate: a fixed-seed campaign sweep that must finish with
// zero invariant violations. The campaign count is environment-tunable so
// the `stress-smoke` CTest preset can run the full 64-campaign acceptance
// batch (under ASan+UBSan) while a bare tier-1 run stays quick.
//
//   DTPSIM_STRESS_CAMPAIGNS=64 ./test_stress_smoke

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "stress/runner.hpp"

using namespace dtpsim;

namespace {

std::uint32_t campaigns_from_env(std::uint32_t fallback) {
  const char* env = std::getenv("DTPSIM_STRESS_CAMPAIGNS");
  if (env == nullptr || *env == '\0') return fallback;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<std::uint32_t>(v) : fallback;
}

}  // namespace

TEST(StressSmoke, FixedSeedCampaignBatchIsViolationFree) {
  const std::uint32_t n = campaigns_from_env(16);
  // differential=true: every multi-threaded campaign is also replayed
  // serially and digest-compared, so the batch sweeps serial, 2- and
  // 4-thread execution of the same specs.
  const stress::BatchOutcome out =
      stress::run_batch(/*seed=*/20260806, n, stress::StressLimits{},
                        /*differential=*/true);

  EXPECT_EQ(out.campaigns, n);
  EXPECT_GT(out.events_executed, 0u);
  for (const auto& f : out.failures) {
    std::string msg = "failing campaign repro:\n" + stress::to_text(f.spec);
    for (const auto& v : f.violations) msg += v.to_string() + "\n";
    ADD_FAILURE() << msg;
  }
}
