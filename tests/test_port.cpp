#include "phy/port.hpp"

#include <gtest/gtest.h>

#include "phy/sync_fifo.hpp"
#include "sim/simulator.hpp"

namespace dtpsim::phy {
namespace {

using namespace dtpsim::literals;

constexpr fs_t kT = 6'400'000;

struct LinkFixture : ::testing::Test {
  sim::Simulator sim{123};
  Oscillator osc_a{kT, 10.0};
  Oscillator osc_b{kT, -10.0, -123'456};
  PhyPort a{sim, osc_a, {}, "a"};
  PhyPort b{sim, osc_b, {}, "b"};
};

TEST_F(LinkFixture, CableFiresLinkUpOnBothSides) {
  int ups = 0;
  a.on_link_up = [&] { ++ups; };
  b.on_link_up = [&] { ++ups; };
  Cable cable(sim, a, b, {from_ns(50), 0.0});
  EXPECT_EQ(ups, 2);
  EXPECT_TRUE(a.link_up());
  EXPECT_EQ(a.peer(), &b);
  EXPECT_EQ(b.peer(), &a);
  EXPECT_EQ(a.propagation_delay(), from_ns(50));
}

TEST_F(LinkFixture, SelfConnectionRejected) {
  EXPECT_THROW(Cable(sim, a, a, {}), std::invalid_argument);
}

TEST_F(LinkFixture, DoubleConnectionRejected) {
  Cable c1(sim, a, b, {});
  PhyPort c{sim, osc_a, {}, "c"};
  EXPECT_THROW(Cable(sim, a, c, {}), std::logic_error);
}

TEST_F(LinkFixture, ControlMessageDelivered) {
  Cable cable(sim, a, b, {from_ns(50), 0.0});
  std::uint64_t got = 0;
  fs_t visible = 0;
  b.on_control = [&](const ControlRx& rx) {
    got = rx.bits56;
    visible = rx.crossing.visible_time;
  };
  a.request_control_slot([](fs_t, std::int64_t) { return 0xABCDEFULL; });
  sim.run_until(1_us);
  EXPECT_EQ(got, 0xABCDEFULL);
  // Visible time = 1 block serialization + 50 ns propagation + crossing.
  EXPECT_GT(visible, from_ns(50));
  EXPECT_LT(visible, from_ns(50) + 8 * kT);
}

TEST_F(LinkFixture, ControlFactoryStampedAtTxTick) {
  Cable cable(sim, a, b, {});
  fs_t tx_time = -1;
  std::int64_t tx_tick = -1;
  a.request_control_slot([&](fs_t t, std::int64_t k) {
    tx_time = t;
    tx_tick = k;
    return 1ULL;
  });
  sim.run_until(1_us);
  ASSERT_GE(tx_tick, 0);
  EXPECT_EQ(osc_a.edge_of_tick(tx_tick), tx_time) << "factory runs exactly on a tick edge";
}

TEST_F(LinkFixture, ControlMessagesSerializeOnePerBlock) {
  Cable cable(sim, a, b, {});
  std::vector<fs_t> arrivals;
  b.on_control = [&](const ControlRx& rx) { arrivals.push_back(rx.wire_arrival); };
  for (int i = 0; i < 3; ++i)
    a.request_control_slot([](fs_t, std::int64_t) { return 7ULL; });
  sim.run_until(1_us);
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[1] - arrivals[0], osc_a.period());
  EXPECT_EQ(arrivals[2] - arrivals[1], osc_a.period());
}

TEST_F(LinkFixture, FrameDelivered) {
  Cable cable(sim, a, b, {from_ns(50), 0.0});
  std::uint32_t got_bytes = 0;
  bool fcs = false;
  b.on_frame = [&](const FrameRx& rx) {
    got_bytes = rx.wire_bytes;
    fcs = rx.fcs_ok;
  };
  auto payload = std::make_shared<int>(42);
  a.send_frame(1530, payload);
  sim.run_until(10_us);
  EXPECT_EQ(got_bytes, 1530u);
  EXPECT_TRUE(fcs);
  EXPECT_EQ(a.frames_sent(), 1u);
}

TEST_F(LinkFixture, FrameOccupiesLineForItsBlocks) {
  Cable cable(sim, a, b, {});
  const auto timing = a.send_frame(1530, nullptr);
  const std::int64_t blocks = blocks_for_frame(1530);
  EXPECT_EQ(timing.end - timing.start, blocks * osc_a.period());
  EXPECT_EQ(timing.next_frame_allowed - timing.end,
            a.params().ipg_blocks * osc_a.period());
}

TEST_F(LinkFixture, BackToBackFramesRespectIpg) {
  Cable cable(sim, a, b, {});
  const auto t1 = a.send_frame(64 + 8, nullptr);
  const auto t2 = a.send_frame(64 + 8, nullptr);
  EXPECT_GE(t2.start, t1.next_frame_allowed);
}

TEST_F(LinkFixture, ControlSlotWaitsForFrameEnd) {
  Cable cable(sim, a, b, {});
  const auto timing = a.send_frame(1530, nullptr);
  fs_t ctl_tx = -1;
  a.request_control_slot([&](fs_t t, std::int64_t) {
    ctl_tx = t;
    return 1ULL;
  });
  sim.run_until(100_us);
  ASSERT_GE(ctl_tx, 0);
  // The control block takes the inter-packet gap slot right at frame end.
  EXPECT_GE(ctl_tx, timing.end);
  EXPECT_LE(ctl_tx, timing.end + 2 * osc_a.period());
}

TEST_F(LinkFixture, ControlInIpgDoesNotDelayWhenGapAvailable) {
  // One control block per gap fits inside the standard's IPG: the following
  // frame is not pushed beyond its normal allowance.
  Cable cable(sim, a, b, {});
  const auto t1 = a.send_frame(1530, nullptr);
  a.request_control_slot([](fs_t, std::int64_t) { return 1ULL; });
  const auto t2 = a.send_frame(1530, nullptr);
  EXPECT_EQ(t2.start, t1.next_frame_allowed);
}

TEST_F(LinkFixture, SendFrameWithoutLinkThrows) {
  EXPECT_THROW(a.send_frame(100, nullptr), std::logic_error);
}

TEST_F(LinkFixture, EmptyControlFactoryRejected) {
  EXPECT_THROW(a.request_control_slot(nullptr), std::invalid_argument);
}

TEST_F(LinkFixture, ZeroOverheadAccounting) {
  // Sending control messages does not create frames: the paper's headline
  // "no Ethernet packets" claim as an invariant.
  Cable cable(sim, a, b, {});
  for (int i = 0; i < 100; ++i)
    a.request_control_slot([](fs_t, std::int64_t) { return 3ULL; });
  sim.run_until(1_ms);
  EXPECT_EQ(a.control_blocks_sent(), 100u);
  EXPECT_EQ(a.frames_sent(), 0u);
}

TEST(SyncFifoTest, CrossingWithinOneToTwoPlusPipelineCycles) {
  sim::Simulator sim(9);
  Oscillator osc(kT, 0.0);
  SyncFifoParams params;  // pipeline = 2
  SyncFifo fifo(params, sim.fork_rng(1));
  for (int i = 0; i < 500; ++i) {
    const fs_t arrival = static_cast<fs_t>(i) * 7'919'000;  // arbitrary phases
    const auto r = fifo.cross(osc, arrival);
    EXPECT_GT(r.visible_time, arrival);
    // Bound: next edge (< T away) + up to 1 random + 2 pipeline cycles.
    EXPECT_LE(r.visible_time - arrival, 4 * kT);
    EXPECT_TRUE(r.random_extra == 0 || r.random_extra == 1);
  }
}

TEST(SyncFifoTest, RandomExtraOnlyNearTheEdge) {
  sim::Simulator sim(10);
  Oscillator osc(kT, 0.0);
  SyncFifoParams params;
  params.extra_cycle_prob = 0.5;
  params.pipeline_cycles = 0;
  params.metastability_window = 0.08;
  SyncFifo fifo(params, sim.fork_rng(2));
  int ones_far = 0, ones_near = 0;
  for (int i = 0; i < 1000; ++i) {
    // Far from the edge: mid-period arrivals are deterministic.
    ones_far += fifo.cross(osc, i * kT + kT / 2).random_extra;
    // Within the window (just before the next edge): may resolve late.
    ones_near += fifo.cross(osc, i * kT + kT - kT / 50).random_extra;
  }
  EXPECT_EQ(ones_far, 0);
  EXPECT_GT(ones_near, 400);
  EXPECT_LT(ones_near, 600);
}

TEST(SyncFifoTest, FullWindowBehavesIid) {
  sim::Simulator sim(15);
  Oscillator osc(kT, 0.0);
  SyncFifoParams params;
  params.extra_cycle_prob = 0.5;
  params.pipeline_cycles = 0;
  params.metastability_window = 1.0;  // every arrival is "near the edge"
  SyncFifo fifo(params, sim.fork_rng(4));
  int ones = 0;
  for (int i = 0; i < 1000; ++i) ones += fifo.cross(osc, i * 7919).random_extra;
  EXPECT_GT(ones, 400);
  EXPECT_LT(ones, 600);
}

TEST(SyncFifoTest, ZeroProbabilityIsDeterministic) {
  sim::Simulator sim(11);
  Oscillator osc(kT, 0.0);
  SyncFifoParams params;
  params.extra_cycle_prob = 0.0;
  params.pipeline_cycles = 3;
  SyncFifo fifo(params, sim.fork_rng(3));
  const auto r = fifo.cross(osc, 100);
  EXPECT_EQ(r.random_extra, 0);
  EXPECT_EQ(r.visible_tick, 1 + 3);  // next edge after 100 fs is tick 1, plus pipeline
}

TEST(BerTest, ControlCorruptionAtHighBer) {
  sim::Simulator sim(12);
  Oscillator oa(kT), ob(kT, 0.0, -1);
  PhyPort a{sim, oa, {}, "a"}, b{sim, ob, {}, "b"};
  Cable cable(sim, a, b, {from_ns(5), 1e-4});  // absurd BER to force hits
  int corrupted = 0, total = 0;
  b.on_control = [&](const ControlRx& rx) {
    ++total;
    corrupted += rx.corrupted;
  };
  for (int i = 0; i < 2000; ++i)
    a.request_control_slot([](fs_t, std::int64_t) { return 0x15ULL; });
  sim.run_until(1_ms);
  EXPECT_EQ(total, 2000);
  // p_block ~ 1 - (1-1e-4)^66 ~ 0.66%.
  EXPECT_GT(corrupted, 2);
  EXPECT_LT(corrupted, 60);
  EXPECT_EQ(cable.corrupted_control(), static_cast<std::uint64_t>(corrupted));
}

TEST(BerTest, CorruptionFlipsExactlyOneBit) {
  sim::Simulator sim(13);
  Oscillator oa(kT), ob(kT);
  PhyPort a{sim, oa, {}, "a"}, b{sim, ob, {}, "b"};
  Cable cable(sim, a, b, {from_ns(5), 1e-3});
  b.on_control = [&](const ControlRx& rx) {
    if (rx.corrupted) {
      EXPECT_EQ(__builtin_popcountll(rx.bits56 ^ 0x15ULL), 1);
    } else {
      EXPECT_EQ(rx.bits56, 0x15ULL);
    }
  };
  for (int i = 0; i < 500; ++i)
    a.request_control_slot([](fs_t, std::int64_t) { return 0x15ULL; });
  sim.run_until(1_ms);
}

TEST(BerTest, FramesMarkedBad) {
  sim::Simulator sim(14);
  Oscillator oa(kT), ob(kT);
  PhyPort a{sim, oa, {}, "a"}, b{sim, ob, {}, "b"};
  Cable cable(sim, a, b, {from_ns(5), 1e-6});
  int bad = 0, total = 0;
  b.on_frame = [&](const FrameRx& rx) {
    ++total;
    bad += !rx.fcs_ok;
  };
  for (int i = 0; i < 300; ++i) a.send_frame(1530, nullptr);
  sim.run();
  EXPECT_EQ(total, 300);
  // p ~ 1-(1-1e-6)^(1530*8) ~ 1.2% per frame.
  EXPECT_GT(bad, 0);
  EXPECT_LT(bad, 40);
}

}  // namespace
}  // namespace dtpsim::phy
