/// Section 3.2 "Network dynamics": link loss, counter resets, partition
/// healing through BEACON-JOIN, and recovery re-INIT.

#include <gtest/gtest.h>

#include "dtp_test_util.hpp"
#include "phy/drift.hpp"

namespace dtpsim::dtp {
namespace {

using namespace dtpsim::literals;

TEST(OscillatorDrift, WalkStateEqualsQuantizedOscillatorPpm) {
  // The walk must continue from the ppm the integer period actually
  // realizes: current_ppm() and osc.ppm() are the same value after every
  // step, not merely close, or long campaigns accumulate quantization bias.
  sim::Simulator sim(204);
  phy::Oscillator osc(6'400'000, 23.0);
  phy::DriftParams dp;
  dp.step_ppm = 5.0;
  dp.update_interval = 1_us;
  phy::DriftProcess drift(sim, osc, dp, sim.fork_rng(7));
  drift.start();
  for (int i = 0; i < 500; ++i) {
    sim.run_until(sim.now() + 1_us);
    ASSERT_EQ(drift.current_ppm(), osc.ppm()) << "step " << i;
  }
}

TEST(LinkDynamics, DisconnectDropsToDown) {
  sim::Simulator sim(201);
  net::Network net(sim);
  auto& a = net.add_host("a", 50.0);
  auto& b = net.add_host("b", -50.0);
  phy::Cable& cable = net.connect(a, b);
  Agent agent_a(a), agent_b(b);
  sim.run_until(1_ms);
  ASSERT_EQ(agent_a.port_logic(0).state(), PortState::kSynced);

  cable.disconnect();
  EXPECT_EQ(agent_a.port_logic(0).state(), PortState::kDown);
  EXPECT_EQ(agent_b.port_logic(0).state(), PortState::kDown);
  EXPECT_FALSE(a.nic_port().link_up());
  EXPECT_FALSE(agent_a.port_logic(0).measured_owd().has_value())
      << "a reconnection must re-measure the delay";
}

TEST(LinkDynamics, DisconnectIsIdempotent) {
  sim::Simulator sim(202);
  net::Network net(sim);
  auto& a = net.add_host("a");
  auto& b = net.add_host("b");
  phy::Cable& cable = net.connect(a, b);
  cable.disconnect();
  cable.disconnect();
  EXPECT_FALSE(cable.connected());
}

TEST(LinkDynamics, AllPortsDownResetsCounters) {
  // "The global counter is set to zero when all ports become inactive."
  sim::Simulator sim(203);
  net::Network net(sim);
  auto& a = net.add_host("a", 50.0);
  auto& b = net.add_host("b", -50.0);
  phy::Cable& cable = net.connect(a, b);
  Agent agent_a(a), agent_b(b);
  sim.run_until(10_ms);
  ASSERT_GT(agent_a.global_at(sim.now()).low64(), 1'000'000u);

  cable.disconnect();
  sim.run_until(11_ms);
  EXPECT_LT(agent_a.global_at(sim.now()).low64(), 1'000'000u)
      << "counter restarted from zero";
  EXPECT_EQ(agent_a.counter_resets(), 1u);
  EXPECT_EQ(agent_b.counter_resets(), 1u);
}

TEST(LinkDynamics, SwitchKeepsCountingWhileOnePortRemains) {
  sim::Simulator sim(204);
  net::Network net(sim);
  auto& sw = net.add_switch("sw");
  auto& h1 = net.add_host("h1");
  auto& h2 = net.add_host("h2");
  phy::Cable& c1 = net.connect(sw, h1);
  net.connect(sw, h2);
  DtpNetwork dtp = enable_dtp(net);
  sim.run_until(5_ms);
  const auto before = dtp.agent_of(&sw)->global_at(sim.now()).low64();

  c1.disconnect();
  sim.run_until(6_ms);
  EXPECT_GT(dtp.agent_of(&sw)->global_at(sim.now()).low64(), before)
      << "one live port keeps the device's counter running";
  EXPECT_EQ(dtp.agent_of(&sw)->counter_resets(), 0u);
  EXPECT_EQ(dtp.agent_of(&h1)->counter_resets(), 1u);
}

TEST(LinkDynamics, ReconnectionResynchronizes) {
  sim::Simulator sim(205);
  net::Network net(sim);
  auto& a = net.add_host("a", 100.0);
  auto& b = net.add_host("b", -100.0);
  phy::Cable& cable = net.connect(a, b);
  Agent agent_a(a), agent_b(b);
  sim.run_until(5_ms);

  cable.disconnect();
  sim.run_until(10_ms);  // b's counter reset; a's too

  net.connect_ports(a.nic_port(), b.nic_port());  // new cable
  sim.run_until(20_ms);
  EXPECT_EQ(agent_a.port_logic(0).state(), PortState::kSynced);
  EXPECT_EQ(agent_b.port_logic(0).state(), PortState::kSynced);
  double worst = 0;
  testutil::run_sampled(sim, 40_ms, 100_us, [&](fs_t) {
    worst = std::max(
        worst, std::abs(true_offset_fractional(agent_a, agent_b, sim.now())));
  });
  EXPECT_LE(worst, 4.0) << "full precision restored after re-cabling";
}

TEST(LinkDynamics, PartitionHealViaJoin) {
  // Two subnets around two switches; the inter-switch trunk fails, the
  // subnets drift (the live one keeps counting, the cut one... both keep
  // their own counters), then the trunk is restored and BEACON-JOIN makes
  // everyone agree on the maximum again.
  sim::Simulator sim(206);
  net::Network net(sim);
  auto& sw1 = net.add_switch("sw1");
  auto& sw2 = net.add_switch("sw2");
  auto& h1 = net.add_host("h1", 80.0);
  auto& h2 = net.add_host("h2", -80.0);
  net.connect(sw1, h1);
  net.connect(sw2, h2);
  phy::Cable& trunk = net.connect(sw1, sw2);
  DtpNetwork dtp = enable_dtp(net);
  sim.run_until(5_ms);
  ASSERT_TRUE(dtp.all_synced());

  const std::size_t sw1_trunk_port = 1;  // port 0 is h1, port 1 the trunk
  trunk.disconnect();
  // Make the divergence unmistakable: age subnet 1 by a million ticks.
  dtp.agent_of(&sw1)->force_global(
      sim.now(), dtp.agent_of(&sw1)->global_at(sim.now()).plus(1'000'000));
  sim.run_until(15_ms);
  ASSERT_GT(static_cast<long long>(
                true_offset_units(*dtp.agent_of(&sw1), *dtp.agent_of(&sw2), sim.now())),
            900'000);

  net.connect_ports(sw1.port(sw1_trunk_port), sw2.port(1));
  sim.run_until(25_ms);
  EXPECT_TRUE(dtp.all_synced());
  EXPECT_LE(dtp.max_pairwise_offset_ticks(sim.now()), 8.0)
      << "both subnets agreed on the (larger) counter";
  EXPECT_GE(dtp.agent_of(&h2)->global_at(sim.now()).low64(), 1'000'000u);
}

TEST(LinkDynamics, InFlightMessagesAtUnplugAreHarmless) {
  sim::Simulator sim(207);
  net::Network net(sim);
  auto& a = net.add_host("a");
  auto& b = net.add_host("b");
  phy::Cable& cable = net.connect(a, b);
  Agent agent_a(a), agent_b(b);
  sim.run_until(1_ms);
  // Queue a beacon-ish message and cut the cable before it is processed.
  agent_a.port_logic(0).send_log(0);
  cable.disconnect();
  EXPECT_NO_THROW(sim.run_until(2_ms));
  EXPECT_EQ(agent_b.port_logic(0).state(), PortState::kDown);
}

}  // namespace
}  // namespace dtpsim::dtp
