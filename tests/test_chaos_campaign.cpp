#include <gtest/gtest.h>

#include <iostream>
#include <memory>

#include "chaos/campaign.hpp"
#include "chaos/engine.hpp"
#include "check/sentinel.hpp"
#include "dtp/hierarchy.hpp"
#include "dtp/watchdog.hpp"
#include "net/frame.hpp"

/// The canonical chaos campaign (chaos/campaign.hpp) on the paper's Fig. 5
/// tree under MTU-saturated load — the acceptance gate for the recovery
/// story: every fault class except the rogue oscillator reconverges within
/// two beacon intervals; the rogue is quarantined by its direct neighbor and
/// the healthy remainder reconverges after collateral remediation.

namespace dtpsim {
namespace {

using namespace dtpsim::literals;

struct CampaignRun {
  sim::Simulator sim;
  net::Network net;
  net::PaperTreeTopology tree;
  dtp::DtpNetwork dtp;

  explicit CampaignRun(std::uint64_t seed)
      : sim(seed),
        net(sim, chaos::CanonicalCampaign::net_params()),
        tree(net::build_paper_tree(net)) {
    dtp = dtp::enable_dtp(net, chaos::CanonicalCampaign::dtp_params());
    chaos::CanonicalCampaign::start_heavy_load(net, tree, net::kMtuFrameBytes);
  }
};

TEST(ChaosCampaign, CanonicalCampaignRecoversWithinTwoBeacons) {
  CampaignRun run(77);
  chaos::ChaosEngine engine(run.net, run.dtp,
                            chaos::CanonicalCampaign::chaos_params());
  const fs_t t0 = chaos::CanonicalCampaign::settle_time();
  engine.schedule(chaos::CanonicalCampaign::plan(run.tree, t0));
  run.sim.run_until(chaos::CanonicalCampaign::end_time(t0));
  ASSERT_TRUE(engine.all_probes_done()) << "a probe never reported";

  const chaos::CampaignReport& report = engine.report();
  for (const char* cls : {"link_flap", "flap_storm", "port_fail", "ber_burst",
                          "beacon_loss", "node_crash"}) {
    const chaos::ClassSummary c = report.summary(cls);
    EXPECT_EQ(c.n, 1) << cls;
    EXPECT_EQ(c.converged, c.n) << cls << " did not reconverge";
    EXPECT_LE(c.p99_bi, 2.0) << cls << " recovery exceeded two beacon intervals";
    EXPECT_TRUE(c.stall_ok) << cls << " violated the stall ceiling";
  }

  // The rogue must be quarantined — its neighbor's port facing it ends up
  // kFaulty — and must NOT itself reconverge; the rest of the network must.
  const chaos::ClassSummary rogue = report.summary("rogue_oscillator");
  EXPECT_EQ(rogue.n, 1);
  EXPECT_TRUE(rogue.isolated) << "the +500 ppm oscillator was never quarantined";
  EXPECT_EQ(rogue.converged, 1) << "the healthy remainder did not reconverge";

  dtp::Agent* s3 = run.dtp.agent_of(run.tree.aggs[2]);
  ASSERT_NE(s3, nullptr);
  const phy::PhyPort* rogue_port = &run.tree.leaves[7]->nic_port();
  bool found = false;
  for (std::size_t p = 0; p < s3->port_count(); ++p) {
    dtp::PortLogic& pl = s3->port_logic(p);
    if (pl.phy_port().peer() != rogue_port) continue;
    found = true;
    EXPECT_EQ(pl.state(), dtp::PortState::kFaulty)
        << "the port facing the rogue must stay quarantined";
  }
  EXPECT_TRUE(found);

  // After remediation, the rogue is the only divergence left: the healthy
  // eleven devices sit within the tree's 4TD envelope of each other.
  double healthy_worst = 0;
  for (std::size_t i = 0; i < run.dtp.size(); ++i) {
    dtp::Agent& a = run.dtp.agent(i);
    if (&a.device() == run.tree.leaves[7]) continue;
    for (std::size_t j = 0; j < run.dtp.size(); ++j) {
      dtp::Agent& b = run.dtp.agent(j);
      if (&b.device() == run.tree.leaves[7]) continue;
      healthy_worst = std::max(
          healthy_worst, std::abs(dtp::true_offset_fractional(a, b, run.sim.now())));
    }
  }
  EXPECT_LE(healthy_worst, 16.0) << "healthy devices diverged post-remediation";

  if (HasFailure()) {  // dump the campaign state for the postmortem
    engine.report().print(std::cerr);
    for (std::size_t i = 0; i < run.dtp.size(); ++i) {
      dtp::Agent& a = run.dtp.agent(i);
      std::cerr << a.device().name() << ":";
      for (std::size_t p = 0; p < a.port_count(); ++p) {
        const dtp::PortLogic& pl = a.port_logic(p);
        std::cerr << "  [" << p << "] " << dtp::to_string(pl.state())
                  << " rx=" << pl.stats().beacons_received
                  << " filt=" << pl.stats().filtered_range
                  << " joins=" << pl.stats().joins_received << "/"
                  << pl.stats().joins_sent;
      }
      std::cerr << "\n";
    }
  }
}

TEST(ChaosCampaign, CampaignIsDeterministic) {
  // Same seed, same plan — byte-identical recovery numbers. Chaos results
  // are only debuggable if a failing campaign can be replayed exactly.
  auto reconverge_times = [](std::uint64_t seed) {
    CampaignRun run(seed);
    chaos::ChaosEngine engine(run.net, run.dtp,
                              chaos::CanonicalCampaign::chaos_params());
    const fs_t t0 = chaos::CanonicalCampaign::settle_time();
    // A two-fault sub-plan keeps the runtime modest.
    chaos::FaultPlan plan;
    plan.add(chaos::FaultSpec::link_flap(*run.tree.leaves[0], *run.tree.aggs[0], t0,
                                         50_us))
        .add(chaos::FaultSpec::node_crash(*run.tree.leaves[4], t0 + 1_ms, 400_us));
    engine.schedule(plan);
    run.sim.run_until(t0 + 3_ms);
    std::vector<double> out;
    for (const auto& r : engine.report().results()) out.push_back(r.reconverge_beacons);
    return out;
  };
  EXPECT_EQ(reconverge_times(99), reconverge_times(99));
}

/// The canonical *source-level* campaign (chaos::SourceCampaign): GPS loss,
/// rogue grandmaster, island partition (holdover), stratum flap — all on the
/// Fig. 5 tree, with the sentinel's UTC invariants armed throughout (no
/// blackout: a backward served step or an understated uncertainty is never
/// legal, fault or not).
struct SourceRun {
  sim::Simulator sim;
  net::Network net;
  net::PaperTreeTopology tree;
  dtp::DtpNetwork dtp;
  dtp::TimeHierarchy hierarchy;

  explicit SourceRun(std::uint64_t seed, unsigned threads = 1)
      : sim(seed),
        net(sim, chaos::SourceCampaign::net_params()),
        tree(net::build_paper_tree(net)) {
    dtp = dtp::enable_dtp(net, chaos::SourceCampaign::dtp_params());
    chaos::SourceCampaign::build_hierarchy(hierarchy, net, dtp, tree);
    hierarchy.start();
    if (threads > 1) sim.set_threads(threads);
  }
};

TEST(ChaosCampaign, SourceCampaignGates) {
  SourceRun run(77);
  check::Sentinel sentinel(run.net, run.dtp);
  sentinel.set_hierarchy(&run.hierarchy);

  chaos::ChaosEngine engine(run.net, run.dtp, chaos::SourceCampaign::chaos_params());
  engine.set_hierarchy(&run.hierarchy);
  const fs_t t0 = chaos::SourceCampaign::settle_time();
  engine.schedule(chaos::SourceCampaign::plan(run.tree, t0));
  // The partition disturbs the *network* layer too; the offset/runaway
  // monitors take the usual fault blackout. The UTC checks never do.
  const auto [bo_from, bo_until] = chaos::SourceCampaign::island_blackout(t0);
  sentinel.add_blackout(bo_from, bo_until);

  run.sim.run_until(chaos::SourceCampaign::end_time(t0));
  ASSERT_TRUE(engine.all_probes_done()) << "a source-fault probe never reported";

  const chaos::CampaignReport& report = engine.report();

  // GPS loss: every client off the dead source and locked elsewhere within
  // two broadcast intervals (staleness_factor 1.5 + one detection sample).
  const chaos::ClassSummary gps = report.summary("gps_loss");
  EXPECT_EQ(gps.n, 1);
  EXPECT_EQ(gps.converged, 1) << "clients never failed over from the dead GPS";
  EXPECT_LE(gps.p99_bi, 2.0) << "failover exceeded two broadcast intervals";

  // Rogue grandmaster: quarantined (isolated) while the truthful stratum-2
  // source keeps serving, then reconverges once the lie is cleared.
  const chaos::ClassSummary rogue = report.summary("rogue_grandmaster");
  EXPECT_EQ(rogue.n, 1);
  EXPECT_TRUE(rogue.isolated) << "the lying grandmaster was never deselected";
  EXPECT_EQ(rogue.converged, 1) << "hierarchy did not settle after the lie cleared";

  // The lie was *rejected*, not averaged in: every client struck the rogue.
  for (const auto& c : run.hierarchy.clients()) {
    const dtp::SourceTrack* t = c->track(1);
    ASSERT_NE(t, nullptr);
    EXPECT_GT(t->rejected, 0u) << c->host().name() << " never rejected the lie";
  }

  // Island partition: S3's clients rode holdover and everyone reconverged
  // after the heal. Stratum flap: selection tracked and settled.
  EXPECT_EQ(report.summary("island_partition").converged, 1);
  EXPECT_EQ(report.summary("stratum_flap").converged, 1);

  // Every client ended locked, and the faults actually exercised selection.
  for (const auto& c : run.hierarchy.clients()) {
    EXPECT_TRUE(c->ever_served()) << c->host().name();
    EXPECT_EQ(c->status(), dtp::HierarchyStatus::kLocked) << c->host().name();
    EXPECT_GT(c->selection_changes(), 1u) << c->host().name();
  }

  // The sentinel's always-on UTC invariants: no backward served step, no
  // understated uncertainty — through every fault, including holdover.
  const auto stats = sentinel.stats();
  EXPECT_GT(stats.utc_checks, 0u) << "UTC monitor never ran";
  EXPECT_TRUE(sentinel.clean()) << [&] {
    std::string out;
    for (const auto& v : sentinel.violations()) out += v.to_string() + "\n";
    return out;
  }();

  if (HasFailure()) engine.report().print(std::cerr);
}

TEST(ChaosCampaign, SourceCampaignDeterministicAcrossThreads) {
  // The full source campaign — selection churn, quarantine, holdover and
  // reconvergence — must be bit-identical serial vs 2 vs 4 worker threads:
  // same sentinel digest (which folds every served sample), same recovery
  // numbers, same per-client counters.
  struct Fingerprint {
    std::string digest;
    std::vector<double> reconverge;
    std::vector<std::uint64_t> counters;
    bool operator==(const Fingerprint&) const = default;
  };
  auto fingerprint = [](unsigned threads) {
    SourceRun run(321, threads);
    check::Sentinel sentinel(run.net, run.dtp);
    sentinel.set_hierarchy(&run.hierarchy);
    chaos::ChaosEngine engine(run.net, run.dtp,
                              chaos::SourceCampaign::chaos_params());
    engine.set_hierarchy(&run.hierarchy);
    const fs_t t0 = chaos::SourceCampaign::settle_time();
    engine.schedule(chaos::SourceCampaign::plan(run.tree, t0));
    run.sim.run_until(chaos::SourceCampaign::end_time(t0));
    Fingerprint fp;
    fp.digest = sentinel.digest().hex();
    for (const auto& r : engine.report().results())
      fp.reconverge.push_back(r.reconverge_beacons);
    for (const auto& c : run.hierarchy.clients()) {
      fp.counters.push_back(c->syncs_received());
      fp.counters.push_back(c->samples_rejected());
      fp.counters.push_back(c->selection_changes());
    }
    return fp;
  };
  const Fingerprint serial = fingerprint(1);
  EXPECT_EQ(serial, fingerprint(2)) << "2-thread run diverged from serial";
  EXPECT_EQ(serial, fingerprint(4)) << "4-thread run diverged from serial";
}

/// The canonical *gray-failure* campaign (chaos::GrayCampaign): asymmetric
/// delay, limping port, silent corruption, frozen counter — partial faults
/// the loud detectors cannot see, detected and remediated by the per-port
/// HealthWatchdog's escalation ladder (DESIGN.md §15).
struct GrayRun {
  sim::Simulator sim;
  net::Network net;
  net::PaperTreeTopology tree;
  dtp::DtpNetwork dtp;
  std::unique_ptr<dtp::HealthWatchdog> watchdog;

  explicit GrayRun(std::uint64_t seed, unsigned threads = 1,
                   dtp::WatchdogParams wp = chaos::GrayCampaign::watchdog_params())
      : sim(seed),
        net(sim, chaos::GrayCampaign::net_params()),
        tree(net::build_paper_tree(net)) {
    dtp = dtp::enable_dtp(net, chaos::GrayCampaign::dtp_params());
    chaos::CanonicalCampaign::start_heavy_load(net, tree, net::kMtuFrameBytes);
    watchdog = std::make_unique<dtp::HealthWatchdog>(net, dtp, wp, seed);
    if (threads > 1) sim.set_threads(threads);
  }
};

TEST(ChaosCampaign, GrayCampaignDetectsAndRemediatesAllClasses) {
  GrayRun run(77);
  check::Sentinel sentinel(run.net, run.dtp);
  sentinel.set_watchdog(run.watchdog.get());
  chaos::ChaosEngine engine(run.net, run.dtp, chaos::GrayCampaign::chaos_params());
  const fs_t t0 = chaos::GrayCampaign::settle_time();
  for (const auto& [from, until] : chaos::GrayCampaign::blackouts(t0))
    sentinel.add_blackout(from, until);
  const chaos::FaultPlan plan = chaos::GrayCampaign::plan(run.tree, t0);
  engine.schedule(plan);
  run.sim.run_until(chaos::GrayCampaign::end_time(t0));
  ASSERT_TRUE(engine.all_probes_done()) << "a gray-fault probe never reported";

  const chaos::CampaignReport& report = engine.report();
  for (const char* cls : {"asymmetric_delay", "limping_port",
                          "silent_corruption", "frozen_counter"}) {
    const chaos::ClassSummary c = report.summary(cls);
    EXPECT_EQ(c.n, 1) << cls;
    EXPECT_EQ(c.converged, c.n) << cls << " did not reconverge after remediation";
  }

  // Detection: every fault window produced a suspicion, and every suspicion
  // lies inside some fault window (+ remediation margin) — a suspicion on
  // clean hardware is a false positive. Remediation: each suspected port
  // walked the ladder (quarantined at least once), finished HEALTHY with the
  // episode closed, and nothing escalated to a disable.
  std::size_t remediated = 0;
  std::vector<int> window_hits(plan.faults.size(), 0);
  for (std::size_t i = 0; i < run.watchdog->watch_count(); ++i) {
    const dtp::WatchdogPortStats& ws = run.watchdog->watch_stats(i);
    if (ws.suspects == 0) continue;
    bool in_window = false;
    for (std::size_t f = 0; f < plan.faults.size(); ++f) {
      const chaos::FaultSpec& spec = plan.faults[f];
      if (ws.first_suspected_at >= spec.at &&
          ws.first_suspected_at < spec.at + spec.duration + 3_ms) {
        in_window = true;
        ++window_hits[f];
      }
    }
    EXPECT_TRUE(in_window) << run.watchdog->watch_label(i)
                           << " suspected outside every fault window";
    if (ws.quarantines > 0) ++remediated;
    EXPECT_EQ(run.watchdog->watch_health(i), dtp::PortHealth::kHealthy)
        << run.watchdog->watch_label(i) << " never recovered";
    EXPECT_EQ(ws.attempts, 0) << run.watchdog->watch_label(i)
                              << " episode still open at the end";
  }
  for (std::size_t f = 0; f < plan.faults.size(); ++f)
    EXPECT_GT(window_hits[f], 0)
        << chaos::fault_class_name(plan.faults[f].kind) << " was never detected";
  EXPECT_GE(remediated, 4u) << "fewer victim ports than faults were remediated";
  EXPECT_EQ(run.watchdog->total_disables(), 0u)
      << "a transient gray fault must not burn a port";

  // The sentinel's watchdog invariants (attempt ceiling, monotone backoff,
  // disable finality) are never blacked out and must be clean throughout.
  EXPECT_GT(sentinel.stats().watchdog_checks, 0u) << "watchdog monitor never ran";
  EXPECT_TRUE(sentinel.clean()) << [&] {
    std::string out;
    for (const auto& v : sentinel.violations()) out += v.to_string() + "\n";
    return out;
  }();

  if (HasFailure()) engine.report().print(std::cerr);
}

TEST(ChaosCampaign, GrayCampaignDeterministicAcrossThreads) {
  // Detection, quarantine, backoff jitter, re-INIT and probation must be
  // bit-identical serial vs 2 vs 4 worker threads: the sentinel digest folds
  // the per-port ladder counters, and the per-watch stats are compared raw.
  struct Fingerprint {
    std::string digest;
    std::vector<double> reconverge;
    std::vector<std::uint64_t> counters;
    bool operator==(const Fingerprint&) const = default;
  };
  auto fingerprint = [](unsigned threads) {
    GrayRun run(321, threads);
    check::Sentinel sentinel(run.net, run.dtp);
    sentinel.set_watchdog(run.watchdog.get());
    chaos::ChaosEngine engine(run.net, run.dtp,
                              chaos::GrayCampaign::chaos_params());
    const fs_t t0 = chaos::GrayCampaign::settle_time();
    engine.schedule(chaos::GrayCampaign::plan(run.tree, t0));
    run.sim.run_until(chaos::GrayCampaign::end_time(t0));
    Fingerprint fp;
    fp.digest = sentinel.digest().hex();
    for (const auto& r : engine.report().results())
      fp.reconverge.push_back(r.reconverge_beacons);
    for (std::size_t i = 0; i < run.watchdog->watch_count(); ++i) {
      const dtp::WatchdogPortStats& ws = run.watchdog->watch_stats(i);
      fp.counters.push_back(ws.strikes);
      fp.counters.push_back(ws.quarantines);
      fp.counters.push_back(ws.reinits);
      fp.counters.push_back(static_cast<std::uint64_t>(ws.last_backoff));
    }
    return fp;
  };
  const Fingerprint serial = fingerprint(1);
  EXPECT_EQ(serial, fingerprint(2)) << "2-thread gray run diverged from serial";
  EXPECT_EQ(serial, fingerprint(4)) << "4-thread gray run diverged from serial";
}

TEST(ChaosCampaign, ProbeExcludesWatchdogQuarantinedPorts) {
  // Regression pin: a watchdog-quarantined port must not count as a neighbor
  // relation in the recovery probe's measurement. A frozen counter gets both
  // sides of the leaf6-S3 link quarantined; with the re-INIT backoff pushed
  // far past the horizon they stay kFaulty for the whole probe window. The
  // probe must still converge — S3's healthy ports are the measurable
  // remainder — exactly like rogue isolation, where the quarantined
  // divergence is the *correct* outcome, not a recovery failure.
  dtp::WatchdogParams wp = chaos::GrayCampaign::watchdog_params();
  wp.reinit_backoff = 50_ms;
  GrayRun run(77, 1, wp);
  chaos::ChaosEngine engine(run.net, run.dtp, chaos::GrayCampaign::chaos_params());
  const fs_t t0 = chaos::GrayCampaign::settle_time();
  chaos::FaultPlan plan;
  plan.add(chaos::FaultSpec::frozen_counter(*run.tree.leaves[6], *run.tree.aggs[2],
                                            t0, 2_ms));
  plan.faults.back().probe_timeout = 5_ms;
  engine.schedule(plan);
  run.sim.run_until(t0 + 8_ms);
  ASSERT_TRUE(engine.all_probes_done());

  // Both victim ports were quarantined and are still parked there.
  EXPECT_GE(run.watchdog->total_quarantines(), 2u);
  dtp::Agent* leaf = run.dtp.agent_of(run.tree.leaves[6]);
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->port_logic(0).state(), dtp::PortState::kFaulty)
      << "the frozen leaf's port should still be quarantined";
  EXPECT_EQ(run.watchdog->total_reinits(), 0u) << "backoff should outlast the run";

  // The probe converged on the healthy remainder despite the live quarantine.
  const chaos::ClassSummary c = engine.report().summary("frozen_counter");
  EXPECT_EQ(c.n, 1);
  EXPECT_EQ(c.converged, 1)
      << "quarantined ports leaked into the probe's neighbor measurement";
}

}  // namespace
}  // namespace dtpsim
