#include <gtest/gtest.h>

#include "dtp/probe.hpp"
#include "dtp_test_util.hpp"

namespace dtpsim::dtp {
namespace {

using namespace dtpsim::literals;
using testutil::TwoNodes;

TEST(DtpInit, BothSidesReachSynced) {
  TwoNodes n(1, 100.0, -100.0);
  n.sim.run_until(1_ms);
  EXPECT_EQ(n.port_a().state(), PortState::kSynced);
  EXPECT_EQ(n.port_b().state(), PortState::kSynced);
  EXPECT_GE(n.port_a().stats().inits_sent, 1u);
  EXPECT_GE(n.port_a().stats().init_acks_sent, 1u);
}

TEST(DtpInit, MeasuredOwdNeverExceedsTrueOwd) {
  // Section 3.3: with alpha = 3 the measured delay must not exceed the true
  // one-way visible delay, otherwise the global counter would run fast.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    TwoNodes n(seed, 100.0, -100.0);
    n.sim.run_until(1_ms);
    const auto d = n.port_b().measured_owd();
    ASSERT_TRUE(d.has_value()) << seed;
    // True visible OWD: propagation (50 ns ~ 7.8T) + 1 serialization tick +
    // crossing (quantization <1T + 0..1 random + 2 pipeline).
    const double prop_ticks = 50.0 / 6.4;
    const double max_true = prop_ticks + 1.0 + 1.0 + 1.0 + 2.0;
    EXPECT_LE(static_cast<double>(*d), max_true) << seed;
    EXPECT_GE(*d, 1) << seed;
  }
}

TEST(DtpInit, OwdSymmetricWithinTwoTicks) {
  TwoNodes n(3, 100.0, -100.0);
  n.sim.run_until(1_ms);
  const auto da = n.port_a().measured_owd();
  const auto db = n.port_b().measured_owd();
  ASSERT_TRUE(da && db);
  EXPECT_LE(std::abs(*da - *db), 2);
}

TEST(DtpSync, OffsetBoundedByFourTicksWorstCaseSkew) {
  // The paper's directly-connected bound: 4T = 25.6 ns.
  TwoNodes n(4, 100.0, -100.0);
  n.sim.run_until(1_ms);  // converge
  double max_offset = 0;
  testutil::run_sampled(n.sim, 200_ms, 10_us, [&](fs_t) {
    max_offset = std::max(max_offset, n.abs_offset_ticks());
  });
  EXPECT_LE(max_offset, 4.0);
  EXPECT_GT(max_offset, 0.0);
}

class DtpSyncSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DtpSyncSeeds, OffsetBoundHoldsAcrossSeedsAndSkews) {
  const std::uint64_t seed = GetParam();
  // Vary skew with the seed to sweep the (fp, fq) space.
  const double ppm_a = static_cast<double>(seed % 7) * 30.0 - 90.0;
  const double ppm_b = -ppm_a;
  TwoNodes n(seed, ppm_a, ppm_b);
  n.sim.run_until(1_ms);
  double max_offset = 0;
  testutil::run_sampled(n.sim, 100_ms, 20_us, [&](fs_t) {
    max_offset = std::max(max_offset, n.abs_offset_ticks());
  });
  EXPECT_LE(max_offset, 4.0) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DtpSyncSeeds, ::testing::Range<std::uint64_t>(1, 13));

TEST(DtpSync, GlobalCounterIsMonotone) {
  TwoNodes n(5, 100.0, -100.0);
  unsigned __int128 last_a = 0, last_b = 0;
  testutil::run_sampled(n.sim, 50_ms, 5_us, [&](fs_t t) {
    const auto va = n.agent_a->global_at(t).value();
    const auto vb = n.agent_b->global_at(t).value();
    EXPECT_GE(va, last_a);
    EXPECT_GE(vb, last_b);
    last_a = va;
    last_b = vb;
  });
}

TEST(DtpSync, NetworkFollowsFastestClock) {
  // gc advances at the fastest oscillator's rate: it must neither fall
  // behind the fast node's free-running tick count nor outrun it.
  TwoNodes n(6, 100.0, -100.0);  // a is fastest
  n.sim.run_until(1_ms);
  const fs_t t0 = n.sim.now();
  const auto gc0 = n.agent_a->global_at(t0).value();
  const auto tick0 = n.a->oscillator().tick_at(t0);
  n.sim.run_until(t0 + 500_ms);
  const fs_t t1 = n.sim.now();
  const auto gc_gain = static_cast<std::int64_t>(n.agent_a->global_at(t1).value() - gc0);
  const auto tick_gain = n.a->oscillator().tick_at(t1) - tick0;
  EXPECT_GE(gc_gain, tick_gain - 1) << "gc must keep the fastest clock's pace";
  EXPECT_LE(gc_gain, tick_gain + 1) << "gc must not run faster than the fastest clock";
}

TEST(DtpSync, SlowNodeAdjustsFastNodeDoesNot) {
  TwoNodes n(7, 100.0, -100.0);
  n.sim.run_until(500_ms);
  // The slow node (b) keeps fast-forwarding toward the fast one.
  EXPECT_GT(n.port_b().stats().adjustments, 100u);
  // The fast node essentially never adjusts (allow a couple from startup).
  EXPECT_LE(n.port_a().stats().adjustments, 4u);
}

TEST(DtpSync, AdjustmentsAreTiny) {
  TwoNodes n(8, 100.0, -100.0);
  n.sim.run_until(1_ms);  // past startup
  n.port_b().stats();     // reset view: just check max over steady state
  n.sim.run_until(500_ms);
  EXPECT_LE(n.port_b().stats().max_adjustment, 3u)
      << "steady-state fast-forwards are 1-2 ticks";
}

TEST(DtpSync, BeaconCadenceMatchesInterval) {
  DtpParams params;
  params.beacon_interval_ticks = 200;
  TwoNodes n(9, 0.0, 0.0, params);
  n.sim.run_until(1_ms);
  const auto sent0 = n.port_a().stats().beacons_sent;
  n.sim.run_until(1_ms + 128_us);  // 128 us / (200 * 6.4 ns) = 100 beacons
  const auto sent = n.port_a().stats().beacons_sent - sent0;
  EXPECT_NEAR(static_cast<double>(sent), 100.0, 3.0);
}

TEST(DtpSync, ZeroFramesOnTheWire) {
  // The headline claim: synchronization adds zero Ethernet packets.
  TwoNodes n(10, 100.0, -100.0);
  n.sim.run_until(100_ms);
  EXPECT_EQ(n.a->nic().stats().tx_frames, 0u);
  EXPECT_EQ(n.b->nic().stats().tx_frames, 0u);
  EXPECT_GT(n.a->nic_port().control_blocks_sent(), 10'000u);
}

TEST(DtpSync, ConvergesWithinTwoBeaconIntervals) {
  // Section 6, takeaway 5. Start b's counter behind by pre-aging a, then
  // watch how fast the offset collapses after both ports are synced.
  TwoNodes n(11, 100.0, -100.0);
  n.sim.run_until(1_ms);
  ASSERT_EQ(n.port_b().state(), PortState::kSynced);
  // Inject a 1000-tick lead on a (as if a just joined a much older subnet);
  // announce via join on a's port.
  n.agent_a->force_global(n.sim.now(), n.agent_a->global_at(n.sim.now()).plus(1000));
  n.port_a().send_join();
  const fs_t two_beacons = 2 * 200 * 6.4_ns;
  n.sim.run_until(n.sim.now() + 4 * two_beacons);  // a little slack for the slot wait
  EXPECT_LE(n.abs_offset_ticks(), 4.0);
}

TEST(DtpSync, OffsetProbeMatchesBound) {
  TwoNodes n(12, 100.0, -100.0);
  n.sim.run_until(1_ms);
  OffsetProbe probe(n.sim, *n.agent_a, 0, *n.agent_b, 0, 10_us);
  probe.start();
  n.sim.run_until(200_ms);
  ASSERT_GT(probe.samples(), 1000u);
  // offset_hw includes FIFO nondeterminism; the paper observes it within
  // +-4 ticks (Fig. 6a-c).
  EXPECT_LE(probe.hw_series().stats().max_abs(), 4.0);
  // Ground truth is tighter still.
  EXPECT_LE(probe.true_series().stats().max_abs(), 4.0);
}

TEST(DtpSync, ProbeRequiresCabledPorts) {
  TwoNodes n(13, 0.0, 0.0);
  sim::Simulator other_sim(1);
  net::Network other_net(other_sim);
  auto& c = other_net.add_host("c", 0.0);
  auto& d = other_net.add_host("d", 0.0);
  other_net.connect(c, d);
  Agent agent_c(c), agent_d(d);
  EXPECT_THROW(OffsetProbe(n.sim, *n.agent_a, 0, agent_d, 0, 1_us),
               std::invalid_argument);
}

TEST(DtpSync, SurvivesOscillatorDrift) {
  net::NetworkParams np;
  np.enable_drift = true;
  np.drift.step_ppm = 1.0;
  np.drift.update_interval = 1_ms;
  TwoNodes n(14, 50.0, -50.0, {}, np);
  n.sim.run_until(1_ms);
  double max_offset = 0;
  testutil::run_sampled(n.sim, 300_ms, 50_us, [&](fs_t) {
    max_offset = std::max(max_offset, n.abs_offset_ticks());
  });
  EXPECT_LE(max_offset, 4.0) << "drift within 802.3 bounds must not break the bound";
}

TEST(DtpSync, LongerCableStillBounded) {
  net::NetworkParams np;
  np.cable.propagation_delay = 5_us;  // the paper's 1 km worst case
  TwoNodes n(15, 100.0, -100.0, {}, np);
  n.sim.run_until(2_ms);
  ASSERT_EQ(n.port_b().state(), PortState::kSynced);
  double max_offset = 0;
  testutil::run_sampled(n.sim, 100_ms, 20_us, [&](fs_t) {
    max_offset = std::max(max_offset, n.abs_offset_ticks());
  });
  EXPECT_LE(max_offset, 4.0);
}

TEST(DtpSync, BeaconInterval1200StillBounded) {
  DtpParams params;
  params.beacon_interval_ticks = 1200;
  TwoNodes n(16, 100.0, -100.0, params);
  n.sim.run_until(1_ms);
  double max_offset = 0;
  testutil::run_sampled(n.sim, 200_ms, 20_us, [&](fs_t) {
    max_offset = std::max(max_offset, n.abs_offset_ticks());
  });
  EXPECT_LE(max_offset, 4.0);
}

TEST(DtpSync, MsbBeaconsFlow) {
  DtpParams params;
  params.msb_every_n_beacons = 10;
  TwoNodes n(17, 0.0, 0.0, params);
  n.sim.run_until(10_ms);
  EXPECT_GT(n.port_a().stats().msbs_sent, 10u);
  EXPECT_GT(n.port_b().stats().msbs_received, 10u);
}

TEST(DtpSync, ParityModeStillSynchronizes) {
  DtpParams params;
  params.parity = true;
  TwoNodes n(18, 100.0, -100.0, params);
  n.sim.run_until(1_ms);
  ASSERT_EQ(n.port_b().state(), PortState::kSynced);
  double max_offset = 0;
  testutil::run_sampled(n.sim, 100_ms, 20_us, [&](fs_t) {
    max_offset = std::max(max_offset, n.abs_offset_ticks());
  });
  EXPECT_LE(max_offset, 4.0);
}

}  // namespace
}  // namespace dtpsim::dtp
