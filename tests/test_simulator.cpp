#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace dtpsim::sim {
namespace {

using namespace dtpsim::literals;

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30_ns, [&] { order.push_back(3); });
  sim.schedule_at(10_ns, [&] { order.push_back(1); });
  sim.schedule_at(20_ns, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30_ns);
}

TEST(Simulator, TiesAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.schedule_at(5_ns, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  fs_t seen = -1;
  sim.schedule_at(10_ns, [&] {
    sim.schedule_in(5_ns, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 15_ns);
}

TEST(Simulator, PastSchedulingThrows) {
  Simulator sim;
  sim.schedule_at(10_ns, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5_ns, [] {}), std::logic_error);
  EXPECT_THROW(sim.schedule_in(-1, [] {}), std::logic_error);
}

TEST(Simulator, EmptyCallbackRejected) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1_ns, nullptr), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  auto h = sim.schedule_at(10_ns, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(h));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelInvalidHandleIsNoop) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventHandle{}));
}

// Regression: the seed recorded any id < next_id_ as cancelled, so
// cancelling a handle whose event already fired leaked a tombstone forever
// and made events_pending() underflow its unsigned subtraction.
TEST(Simulator, CancelAfterFireReturnsFalseAndRecordsNothing) {
  Simulator sim;
  auto h = sim.schedule_at(10_ns, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));
  EXPECT_EQ(sim.events_pending(), 0u);
  EXPECT_EQ(sim.stats().cancelled, 0u);
  // A later event must be unaffected by the stale cancels above.
  bool fired = false;
  sim.schedule_in(1_ns, [&] { fired = true; });
  EXPECT_EQ(sim.events_pending(), 1u);
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelTwiceSecondIsNoop) {
  Simulator sim;
  auto h = sim.schedule_at(10_ns, [] {});
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));
  EXPECT_EQ(sim.events_pending(), 0u);
  EXPECT_EQ(sim.stats().cancelled, 1u);
}

// A handle must not be able to cancel an unrelated event that reuses its
// slot: the generation counter detects the reuse.
TEST(Simulator, StaleHandleCannotCancelReusedSlot) {
  Simulator sim;
  auto stale = sim.schedule_at(10_ns, [] {});
  EXPECT_TRUE(sim.cancel(stale));
  bool fired = false;
  sim.schedule_at(10_ns, [&] { fired = true; });  // reuses the freed slot
  EXPECT_FALSE(sim.cancel(stale));
  EXPECT_EQ(sim.events_pending(), 1u);
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelOwnHandleInsideCallbackIsNoop) {
  Simulator sim;
  EventHandle self;
  bool cancel_result = true;
  self = sim.schedule_at(10_ns, [&] { cancel_result = sim.cancel(self); });
  sim.run();
  EXPECT_FALSE(cancel_result);
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(Simulator, EventsPendingIsExactUnderChurn) {
  Simulator sim;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i)
    handles.push_back(sim.schedule_at((i + 1) * 1_ns, [] {}));
  EXPECT_EQ(sim.events_pending(), 100u);
  for (int i = 0; i < 100; i += 2) EXPECT_TRUE(sim.cancel(handles[i]));
  EXPECT_EQ(sim.events_pending(), 50u);
  sim.run();
  EXPECT_EQ(sim.events_pending(), 0u);
  // The seed bug made this underflow to ~SIZE_MAX after stale cancels.
  for (auto& h : handles) sim.cancel(h);
  EXPECT_EQ(sim.events_pending(), 0u);
  EXPECT_EQ(sim.events_executed(), 50u);
}

TEST(Simulator, CancelledEventNeverRunsEvenWhenInterleaved) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(10_ns, [&] { order.push_back(1); });
  auto h = sim.schedule_at(10_ns, [&] { order.push_back(2); });
  sim.schedule_at(10_ns, [&] { order.push_back(3); });
  EXPECT_TRUE(sim.cancel(h));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Simulator, StatsCountersAndCategories) {
  Simulator sim;
  sim.schedule_at(1_ns, [] {}, EventCategory::kBeacon);
  sim.schedule_at(2_ns, [] {}, EventCategory::kFrame);
  sim.schedule_at(3_ns, [] {}, EventCategory::kFrame);
  auto h = sim.schedule_at(4_ns, [] {}, EventCategory::kProbe);
  sim.cancel(h);
  sim.run();
  const SimStats st = sim.stats();
  EXPECT_EQ(st.scheduled, 4u);
  EXPECT_EQ(st.executed, 3u);
  EXPECT_EQ(st.cancelled, 1u);
  EXPECT_EQ(st.pending, 0u);
  EXPECT_EQ(st.peak_pending, 4u);
  EXPECT_EQ(st.executed_by_category[static_cast<int>(EventCategory::kBeacon)], 1u);
  EXPECT_EQ(st.executed_by_category[static_cast<int>(EventCategory::kFrame)], 2u);
  EXPECT_EQ(st.executed_by_category[static_cast<int>(EventCategory::kProbe)], 0u);
}

TEST(Simulator, LargeCallbackFallsBackToHeapAndStillRuns) {
  Simulator sim;
  // 128 bytes of capture: exceeds the inline buffer, exercises the heap path.
  std::array<std::uint64_t, 16> big{};
  big.fill(7);
  std::uint64_t sum = 0;
  sim.schedule_at(1_ns, [big, &sum] {
    for (auto v : big) sum += v;
  });
  sim.run();
  EXPECT_EQ(sum, 112u);
}

TEST(Callback, InlineForSmallCaptures) {
  int x = 0;
  Callback small([&x] { ++x; });
  EXPECT_TRUE(small.is_inline());
  small();
  EXPECT_EQ(x, 1);
  Callback moved(std::move(small));
  EXPECT_FALSE(static_cast<bool>(small));
  moved();
  EXPECT_EQ(x, 2);
}

TEST(Simulator, RunUntilStopsOnTimeAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10_ns, [&] { ++fired; });
  sim.schedule_at(30_ns, [&] { ++fired; });
  sim.run_until(20_ns);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 20_ns);
  sim.run_until(40_ns);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 40_ns);
}

TEST(Simulator, RunUntilExecutesEventAtBoundary) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(10_ns, [&] { fired = true; });
  sim.run_until(10_ns);
  EXPECT_TRUE(fired);
}

TEST(Simulator, StepOneAtATime) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1_ns, [&] { ++fired; });
  sim.schedule_at(2_ns, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_in(1_ns, recurse);
  };
  sim.schedule_in(1_ns, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.events_executed(), 100u);
}

TEST(Simulator, ForkRngDeterministicAcrossRuns) {
  Simulator a(77), b(77);
  Rng ra = a.fork_rng(1), rb = b.fork_rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ra(), rb());
}

TEST(PeriodicProcess, FiresAtPeriod) {
  Simulator sim;
  std::vector<fs_t> times;
  PeriodicProcess p(sim, 10_ns, [&] { times.push_back(sim.now()); });
  p.start();
  sim.run_until(35_ns);
  EXPECT_EQ(times, (std::vector<fs_t>{10_ns, 20_ns, 30_ns}));
}

TEST(PeriodicProcess, StartWithPhase) {
  Simulator sim;
  std::vector<fs_t> times;
  PeriodicProcess p(sim, 10_ns, [&] { times.push_back(sim.now()); });
  p.start_with_phase(3_ns);
  sim.run_until(25_ns);
  EXPECT_EQ(times, (std::vector<fs_t>{3_ns, 13_ns, 23_ns}));
}

TEST(PeriodicProcess, StopFromInsideCallback) {
  Simulator sim;
  int count = 0;
  PeriodicProcess p(sim, 1_ns, [&] {
    if (++count == 3) p.stop();
  });
  p.start();
  sim.run_until(100_ns);
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(p.running());
}

// Regression: stop() inside the callback used to cancel the id of the
// *currently firing* event, corrupting the engine's pending accounting.
// The in-flight handle is now cleared before the callback runs.
TEST(PeriodicProcess, StopFromCallbackLeavesExactPendingCount) {
  Simulator sim;
  int count = 0;
  PeriodicProcess p(sim, 1_ns, [&] {
    ++count;
    p.stop();
  });
  p.start();
  sim.run_until(100_ns);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.events_pending(), 0u);
  EXPECT_EQ(sim.stats().cancelled, 0u);  // the no-op stop recorded nothing
}

TEST(PeriodicProcess, StopThenRestartInsideCallbackDoesNotDoubleArm) {
  Simulator sim;
  std::vector<fs_t> times;
  PeriodicProcess p(sim, 10_ns, [&] {
    times.push_back(sim.now());
    if (times.size() == 1) {
      p.stop();
      p.start_with_phase(5_ns);  // re-arm with a new phase from inside fn
    }
  });
  p.start();
  sim.run_until(40_ns);
  EXPECT_EQ(times, (std::vector<fs_t>{10_ns, 15_ns, 25_ns, 35_ns}));
}

TEST(PeriodicProcess, SetPeriodTakesEffectNextCycle) {
  Simulator sim;
  std::vector<fs_t> times;
  PeriodicProcess p(sim, 10_ns, [&] {
    times.push_back(sim.now());
    p.set_period(20_ns);
  });
  p.start();
  sim.run_until(60_ns);
  EXPECT_EQ(times, (std::vector<fs_t>{10_ns, 30_ns, 50_ns}));
}

TEST(PeriodicProcess, InvalidArgsThrow) {
  Simulator sim;
  EXPECT_THROW(PeriodicProcess(sim, 0, [] {}), std::invalid_argument);
  EXPECT_THROW(PeriodicProcess(sim, 1_ns, nullptr), std::invalid_argument);
}

TEST(PeriodicProcess, StopThenRestart) {
  Simulator sim;
  int count = 0;
  PeriodicProcess p(sim, 10_ns, [&] { ++count; });
  p.start();
  sim.run_until(25_ns);
  EXPECT_EQ(count, 2);
  p.stop();
  sim.run_until(50_ns);
  EXPECT_EQ(count, 2);
  p.start();
  sim.run_until(65_ns);
  EXPECT_EQ(count, 3);
}

}  // namespace
}  // namespace dtpsim::sim
