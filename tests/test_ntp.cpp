#include "ntp/ntp.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace dtpsim::ntp {
namespace {

using namespace dtpsim::literals;

struct NtpFixture {
  sim::Simulator sim;
  net::Network net;
  net::StarTopology star;
  std::unique_ptr<NtpServer> server;
  std::vector<std::unique_ptr<NtpClient>> clients;

  explicit NtpFixture(std::uint64_t seed, std::size_t n_clients,
                      NtpClientParams cp = fast_params())
      : sim(seed), net(sim), star(net::build_star(net, n_clients + 1)) {
    server = std::make_unique<NtpServer>(sim, *star.hosts[0]);
    for (std::size_t i = 1; i <= n_clients; ++i)
      clients.push_back(std::make_unique<NtpClient>(sim, *star.hosts[i],
                                                    star.hosts[0]->addr(),
                                                    server->clock(), cp));
    for (auto& c : clients) c->start();
  }

  static NtpClientParams fast_params() {
    NtpClientParams cp;
    cp.poll_interval = from_ms(250);  // accelerate convergence for tests
    return cp;
  }

  double tail_error_ns(std::size_t client = 0, double tail = 0.3) const {
    const auto& pts = clients[client]->true_series().points();
    double worst = 0;
    for (std::size_t i = static_cast<std::size_t>(
             static_cast<double>(pts.size()) * (1 - tail));
         i < pts.size(); ++i)
      worst = std::max(worst, std::abs(pts[i].value));
    return worst;
  }
};

TEST(Ntp, ExchangesComplete) {
  NtpFixture f(81, 2);
  f.sim.run_until(10_sec);
  for (auto& c : f.clients) {
    EXPECT_GT(c->polls_sent(), 30u);
    EXPECT_GT(c->exchanges(), 20u);
  }
  EXPECT_GT(f.server->requests_served(), 60u);
}

TEST(Ntp, ConvergesToMicrosecondScale) {
  NtpFixture f(82, 2);
  f.sim.run_until(30_sec);
  for (std::size_t i = 0; i < f.clients.size(); ++i) {
    const double err = f.tail_error_ns(i);
    // Table 1: NTP gives LAN precision in the tens of microseconds —
    // far better than unsynchronized (100 ppm = ms/10s) but far worse
    // than PTP/DTP.
    EXPECT_LT(err, 100'000.0) << "client " << i;
    EXPECT_GT(err, 100.0) << "software timestamping cannot reach PTP levels";
  }
}

TEST(Ntp, FilterPrefersMinimumDelaySample) {
  // The clock filter's whole job: a congested sample must not poison the
  // offset estimate while cleaner samples remain in the window.
  NtpFixture f(83, 1);
  f.sim.run_until(15_sec);
  const double before = f.tail_error_ns();
  // Congest the client's downlink (fan-in from a second host would be
  // needed at full rate; here the stack spikes already provide outliers).
  EXPECT_LT(before, 100'000.0);
}

TEST(Ntp, StepsOnGrossOffset) {
  // A client whose clock starts grossly wrong must step, not slew forever.
  sim::Simulator sim(84);
  net::Network net(sim);
  auto star = net::build_star(net, 2);
  NtpServer server(sim, *star.hosts[0]);
  NtpClientParams cp = NtpFixture::fast_params();
  NtpClient client(sim, *star.hosts[1], star.hosts[0]->addr(), server.clock(), cp);
  client.clock().step(0, -200e6);  // 200 ms behind
  client.start();
  sim.run_until(10_sec);
  const double err = std::abs(client.clock().time_ns_at(sim.now()) -
                              server.clock().time_ns_at(sim.now()));
  EXPECT_LT(err, 1e6) << "the 200 ms error must be gone";
}

TEST(Ntp, LoadDegradesNtpBadly) {
  NtpFixture f(85, 2);
  f.sim.run_until(10_sec);
  // Fan-in congestion onto client 2.
  net::TrafficParams tp;
  tp.saturate = true;
  f.net.add_traffic(*f.star.hosts[1], f.star.hosts[2]->addr(), tp).start();
  f.net.add_traffic(*f.star.hosts[0], f.star.hosts[2]->addr(), tp).start();
  f.sim.run_until(25_sec);
  // NTP's min-delay filter helps, but the path is now asymmetric by the
  // queueing delay; errors grow well beyond the idle case.
  EXPECT_GT(f.tail_error_ns(1, 0.2), 20'000.0);
}

TEST(Ntp, ServerEchoesOriginateTimestamp) {
  sim::Simulator sim(86);
  net::Network net(sim);
  auto star = net::build_star(net, 2);
  NtpServer server(sim, *star.hosts[0]);
  double got_t1 = -1, got_t2 = -1, got_t3 = -1;
  star.hosts[1]->on_app_receive = [&](const net::Frame& f, fs_t, fs_t) {
    if (auto m = std::dynamic_pointer_cast<const NtpMessage>(f.packet);
        m && m->response) {
      got_t1 = m->t1_ns;
      got_t2 = m->t2_ns;
      got_t3 = m->t3_ns;
    }
  };
  auto req = std::make_shared<NtpMessage>();
  req->sequence = 1;
  req->t1_ns = 12345.0;
  net::Frame f;
  f.dst = star.hosts[0]->addr();
  f.ethertype = kEtherTypeNtp;
  f.payload_bytes = 48;
  f.packet = req;
  star.hosts[1]->send_app(f);
  sim.run_until(1_sec);
  EXPECT_EQ(got_t1, 12345.0);
  EXPECT_GT(got_t2, 0.0);
  EXPECT_GE(got_t3, got_t2);
}

}  // namespace
}  // namespace dtpsim::ntp
