#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dtpsim {
namespace {

TEST(StreamingStats, EmptyIsSane) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.max_abs(), 0.0);
}

TEST(StreamingStats, SingleSample) {
  StreamingStats s;
  s.add(-3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.min(), -3.5);
  EXPECT_EQ(s.max(), -3.5);
  EXPECT_EQ(s.mean(), -3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.max_abs(), 3.5);
}

TEST(StreamingStats, KnownMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(StreamingStats, MergeMatchesSequential) {
  StreamingStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.7) * 10;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);

  StreamingStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), mean);
}

TEST(StreamingStats, SummaryMentionsCount) {
  StreamingStats s;
  s.add(1);
  EXPECT_NE(s.summary().find("n=1"), std::string::npos);
}

TEST(SampleSeries, PercentilesOnKnownData) {
  SampleSeries s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.5);
}

TEST(SampleSeries, MinMaxMeanStd) {
  SampleSeries s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_EQ(s.max_abs(), 4.0);
}

TEST(SampleSeries, AddAfterPercentileStillWorks) {
  SampleSeries s;
  s.add(5);
  EXPECT_EQ(s.percentile(50), 5.0);
  s.add(1);
  EXPECT_EQ(s.min(), 1.0);
}

TEST(SampleSeries, EmptyThrows) {
  SampleSeries s;
  EXPECT_THROW(s.percentile(50), std::logic_error);
  EXPECT_THROW(s.min(), std::logic_error);
}

TEST(TimeSeries, RecordsPointsAndStats) {
  TimeSeries ts;
  ts.add(0.0, 1.0);
  ts.add(1.0, -2.0);
  EXPECT_EQ(ts.points().size(), 2u);
  EXPECT_EQ(ts.stats().count(), 2u);
  EXPECT_EQ(ts.stats().max_abs(), 2.0);
}

TEST(TimeSeries, CapsPointsButNotStats) {
  TimeSeries ts(4);
  for (int i = 0; i < 10; ++i) ts.add(i, i);
  EXPECT_EQ(ts.points().size(), 4u);
  EXPECT_EQ(ts.stats().count(), 10u);
  EXPECT_EQ(ts.stats().max(), 9.0);
}

TEST(MovingAverage, WarmupAveragesWhatItHas) {
  MovingAverage ma(4);
  EXPECT_DOUBLE_EQ(ma.push(4.0), 4.0);
  EXPECT_DOUBLE_EQ(ma.push(8.0), 6.0);
  EXPECT_DOUBLE_EQ(ma.push(0.0), 4.0);
}

TEST(MovingAverage, SlidesAfterFull) {
  MovingAverage ma(2);
  ma.push(1.0);
  ma.push(3.0);
  EXPECT_DOUBLE_EQ(ma.push(5.0), 4.0);   // (3+5)/2
  EXPECT_DOUBLE_EQ(ma.push(-5.0), 0.0);  // (5-5)/2
}

TEST(MovingAverage, WindowOneIsIdentity) {
  MovingAverage ma(1);
  EXPECT_DOUBLE_EQ(ma.push(7.0), 7.0);
  EXPECT_DOUBLE_EQ(ma.push(-1.0), -1.0);
}

TEST(MovingAverage, ZeroWindowRejected) {
  EXPECT_THROW(MovingAverage(0), std::invalid_argument);
}

TEST(MovingAverage, SmoothsNoise) {
  // Alternating +-1 noise around 0 must shrink by the window factor.
  MovingAverage ma(10);
  double last = 0;
  for (int i = 0; i < 100; ++i) last = ma.push((i % 2) ? 1.0 : -1.0);
  EXPECT_LE(std::fabs(last), 0.11);
}

}  // namespace
}  // namespace dtpsim
