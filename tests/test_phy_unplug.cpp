#include <gtest/gtest.h>

#include <memory>

#include "phy/oscillator.hpp"
#include "phy/port.hpp"
#include "sim/simulator.hpp"

/// Unplug semantics (Section 3.2, "network dynamics"): pulling a cable kills
/// the light in the fiber, so anything serialized but not yet delivered —
/// frames in flight, control blocks crossing the CDC — must vanish rather
/// than arrive at a link-down port.

namespace dtpsim::phy {
namespace {

using namespace dtpsim::literals;

struct TwoPorts {
  sim::Simulator sim{11};
  Oscillator osc_a{nominal_period(LinkRate::k10G), 50.0, 0};
  Oscillator osc_b{nominal_period(LinkRate::k10G), -50.0, 1'000'000};
  PhyPort a{sim, osc_a, {}, "a"};
  PhyPort b{sim, osc_b, {}, "b"};
};

TEST(PhyUnplug, FrameInFlightIsDroppedByDisconnect) {
  TwoPorts tp;
  Cable cable(tp.sim, tp.a, tp.b, {});

  int frames_at_b = 0;
  tp.b.on_frame = [&](const FrameRx&) { ++frames_at_b; };

  auto payload = std::make_shared<int>(42);
  const auto timing = tp.a.send_frame(1522, payload);
  // The last bit leaves a's serializer at timing.end; it reaches b one
  // propagation delay (50 ns) later. Unplug inside that window.
  tp.sim.run_until(timing.end + 10_ns);
  cable.disconnect();
  tp.sim.run();

  EXPECT_EQ(frames_at_b, 0) << "a frame was delivered to a link-down port";
  EXPECT_FALSE(tp.b.link_up());
}

TEST(PhyUnplug, ControlBlockInFlightIsDroppedByDisconnect) {
  TwoPorts tp;
  Cable cable(tp.sim, tp.a, tp.b, {});

  int control_at_b = 0;
  tp.b.on_control = [&](const ControlRx&) { ++control_at_b; };

  bool sent = false;
  tp.a.request_control_slot([&](fs_t, std::int64_t) {
    sent = true;
    return std::uint64_t{0xABCD};
  });
  // Let the block serialize (the line is idle: next tick edge), then pull
  // the cable before the 50 ns propagation completes.
  tp.sim.run_until(tp.sim.now() + 20_ns);
  ASSERT_TRUE(sent);
  cable.disconnect();
  tp.sim.run();

  EXPECT_EQ(control_at_b, 0) << "a control block crossed a dead cable";
}

TEST(PhyUnplug, ReconnectAfterUnplugDeliversCleanly) {
  TwoPorts tp;
  auto cable = std::make_unique<Cable>(tp.sim, tp.a, tp.b, Cable::Params{});

  int frames_at_b = 0;
  int link_ups_at_b = 1;  // the first Cable ctor already fired it
  tp.b.on_frame = [&](const FrameRx& rx) {
    if (rx.fcs_ok) ++frames_at_b;
  };
  tp.b.on_link_up = [&] { ++link_ups_at_b; };

  auto payload = std::make_shared<int>(1);
  const auto timing = tp.a.send_frame(1522, payload);
  tp.sim.run_until(timing.end + 10_ns);
  cable->disconnect();
  tp.sim.run();
  ASSERT_EQ(frames_at_b, 0);

  // Replug: a fresh cable. The lost frame stays lost; new traffic flows.
  cable = std::make_unique<Cable>(tp.sim, tp.a, tp.b, Cable::Params{});
  EXPECT_TRUE(tp.b.link_up());
  EXPECT_EQ(link_ups_at_b, 2);
  tp.a.send_frame(1522, payload);
  tp.sim.run();
  EXPECT_EQ(frames_at_b, 1);
}

TEST(PhyUnplug, DisconnectIsIdempotentWithManyInFlight) {
  TwoPorts tp;
  Cable cable(tp.sim, tp.a, tp.b, {});
  int frames_at_b = 0;
  tp.b.on_frame = [&](const FrameRx&) { ++frames_at_b; };

  // Exceed the in-flight tracking compaction threshold to exercise pruning.
  auto payload = std::make_shared<int>(0);
  for (int i = 0; i < 100; ++i) tp.a.send_frame(64, payload);
  const auto timing = tp.a.send_frame(1522, payload);
  tp.sim.run_until(timing.end + 10_ns);
  const int delivered_before = frames_at_b;
  cable.disconnect();
  cable.disconnect();  // idempotent
  tp.sim.run();
  EXPECT_EQ(frames_at_b, delivered_before) << "disconnect must stop all deliveries";
  EXPECT_LT(frames_at_b, 101);
}

}  // namespace
}  // namespace dtpsim::phy
