#include "apps/owd.hpp"

#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "dtp/daemon.hpp"
#include "dtp_test_util.hpp"
#include "ptp/client.hpp"
#include "ptp/grandmaster.hpp"

namespace dtpsim::apps {
namespace {

using namespace dtpsim::literals;

dtp::DaemonParams fast_daemon() {
  dtp::DaemonParams dp;
  dp.poll_period = from_ms(20);
  dp.sample_period = 0;
  return dp;
}

TEST(OwdMeter, TrueOwdMatchesWireTime) {
  dtp::testutil::TwoNodes n(111, 50.0, -50.0);
  dtp::Daemon da(n.sim, *n.agent_a, fast_daemon(), 10.0);
  dtp::Daemon db(n.sim, *n.agent_b, fast_daemon(), -10.0);
  da.start();
  db.start();
  n.sim.run_until(200_ms);

  OwdMeter meter(
      n.sim, *n.a, *n.b, [&](fs_t t) { return da.get_time_ns(t); },
      [&](fs_t t) { return db.get_time_ns(t); }, 5_ms);
  meter.start();
  n.sim.run_until(1_sec);
  ASSERT_GT(meter.probes_received(), 100u);
  // True OWD = serialization (~64B) + 50 ns propagation; well under 1 us.
  EXPECT_GT(meter.true_series().stats().mean(), 50.0);
  EXPECT_LT(meter.true_series().stats().mean(), 1'000.0);
}

TEST(OwdMeter, DtpClocksMeasureOwdToTensOfNs) {
  // The paper's motivating application: with DTP-synchronized clocks,
  // one-way delay is measurable to tens of ns.
  dtp::testutil::TwoNodes n(112, 100.0, -100.0);
  dtp::Daemon da(n.sim, *n.agent_a, fast_daemon(), 20.0);
  dtp::Daemon db(n.sim, *n.agent_b, fast_daemon(), -15.0);
  da.start();
  db.start();
  n.sim.run_until(200_ms);

  OwdMeter meter(
      n.sim, *n.a, *n.b, [&](fs_t t) { return da.get_time_ns(t); },
      [&](fs_t t) { return db.get_time_ns(t); }, 5_ms);
  meter.start();
  n.sim.run_until(2_sec);
  ASSERT_GT(meter.probes_received(), 200u);
  // Measurement error is exactly the clock disagreement: 4TD + software
  // access — usually double-digit ns, with rare PCIe-spike outliers, never
  // the hundreds of us an unsynchronized pair would show.
  SampleSeries errs;
  for (const auto& p : meter.error_series().points()) errs.add(p.value);
  EXPECT_LT(errs.percentile(90), 120.0);
  EXPECT_GT(errs.percentile(10), -120.0);
  EXPECT_LT(errs.max_abs(), 3'000.0);
  EXPECT_LT(std::abs(errs.mean()), 100.0);
}

TEST(OwdMeter, UnsynchronizedClocksAreUseless) {
  // Without synchronization, +-100 ppm free-running clocks make OWD
  // nonsense within a second (200 ppm * 1 s = 200 us of divergence).
  dtp::testutil::TwoNodes n(113, 100.0, -100.0);
  // No daemons, no agents in the clock path: read free-running oscillators.
  auto clock_a = [&](fs_t t) {
    return static_cast<double>(n.a->oscillator().tick_at(t)) * 6.4;
  };
  auto clock_b = [&](fs_t t) {
    return static_cast<double>(n.b->oscillator().tick_at(t)) * 6.4;
  };
  OwdMeter meter(n.sim, *n.a, *n.b, clock_a, clock_b, 50_ms);
  meter.start();
  n.sim.run_until(2_sec);
  ASSERT_GT(meter.probes_received(), 20u);
  EXPECT_GT(meter.error_series().stats().max_abs(), 100'000.0)
      << "free-running clocks diverge by hundreds of us over seconds";
}

TEST(OwdMeter, PtpClocksGiveSubMicrosecondOwdWhenIdle) {
  sim::Simulator sim(114);
  net::NetworkParams np;
  np.enable_drift = true;
  np.drift.step_ppm = 0.01;
  np.drift.update_interval = from_ms(10);
  net::Network net(sim, np);
  auto star = net::build_star(net, 3);
  ptp::GrandmasterParams gp;
  gp.sync_interval = from_ms(250);
  ptp::Grandmaster gm(sim, *star.hosts[0], gp);
  ptp::PtpClientParams cp;
  cp.delay_req_interval = from_ms(187);
  ptp::PtpClient c1(sim, *star.hosts[1], gm.phc(), cp);
  ptp::PtpClient c2(sim, *star.hosts[2], gm.phc(), cp);
  gm.start();
  c1.start();
  c2.start();
  sim.run_until(15_sec);

  OwdMeter meter(
      sim, *star.hosts[1], *star.hosts[2],
      [&](fs_t t) { return c1.phc().time_ns_at(t); },
      [&](fs_t t) { return c2.phc().time_ns_at(t); }, 50_ms);
  meter.start();
  sim.run_until(20_sec);
  ASSERT_GT(meter.probes_received(), 50u);
  EXPECT_LT(meter.error_series().stats().max_abs(), 5'000.0);
  // Floor: one 6.4ns tick. With unbiased period quantization the PTP pair
  // lands at single-digit ns when idle, but can never be tick-perfect.
  EXPECT_GT(meter.error_series().stats().max_abs(), 6.4)
      << "but PTP cannot be implausibly perfect";
}

}  // namespace
}  // namespace dtpsim::apps
