#include "common/wide_counter.hpp"

#include <gtest/gtest.h>

#include "check/sentinel.hpp"
#include "dtp/network.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace dtpsim {
namespace {

TEST(WideCounter, DefaultIsZero) {
  WideCounter c;
  EXPECT_EQ(c.low64(), 0u);
  EXPECT_EQ(c.lsb53(), 0u);
  EXPECT_EQ(c.msb53(), 0u);
}

TEST(WideCounter, HalvesRoundTrip) {
  const auto c = WideCounter::from_halves(0x1FFF'FFFF'FFFF'F1ULL, 0xABCDEFULL);
  EXPECT_EQ(c.msb53(), 0x1FFF'FFFF'FFFF'F1ULL);
  EXPECT_EQ(c.lsb53(), 0xABCDEFULL);
}

TEST(WideCounter, HalvesMaskExtraBits) {
  // Feeding more than 53 bits must not leak into the other half.
  const auto c = WideCounter::from_halves(~0ULL, ~0ULL);
  EXPECT_EQ(c.msb53(), kDtpPayloadMask);
  EXPECT_EQ(c.lsb53(), kDtpPayloadMask);
}

TEST(WideCounter, AdvanceCarriesIntoMsb) {
  WideCounter c = WideCounter::from_halves(0, kDtpPayloadMask);
  c.advance(1);
  EXPECT_EQ(c.lsb53(), 0u);
  EXPECT_EQ(c.msb53(), 1u);
}

TEST(WideCounter, AdvanceWrapsModulo106) {
  WideCounter c = WideCounter::from_halves(kDtpPayloadMask, kDtpPayloadMask);
  c.advance(1);
  EXPECT_EQ(c.value(), 0u);
}

TEST(WideCounter, PlusIsNonMutating) {
  const WideCounter c(10);
  const WideCounter d = c.plus(5);
  EXPECT_EQ(c.low64(), 10u);
  EXPECT_EQ(d.low64(), 15u);
}

TEST(WideCounter, DiffSmallValues) {
  const WideCounter a(100), b(97);
  EXPECT_EQ(static_cast<long long>(a.diff(b)), 3);
  EXPECT_EQ(static_cast<long long>(b.diff(a)), -3);
  EXPECT_EQ(static_cast<long long>(a.diff(a)), 0);
}

TEST(WideCounter, DiffAcross106BitWrap) {
  WideCounter near_top = WideCounter::from_halves(kDtpPayloadMask, kDtpPayloadMask);
  const WideCounter wrapped = near_top.plus(5);  // wraps to 4
  EXPECT_EQ(static_cast<long long>(wrapped.diff(near_top)), 5);
  EXPECT_EQ(static_cast<long long>(near_top.diff(wrapped)), -5);
}

TEST(WideCounter, Ordering) {
  const WideCounter a(1), b(2);
  EXPECT_LT(a, b);
  EXPECT_EQ(max(a, b), b);
  EXPECT_EQ(max(b, a), b);
}

TEST(WideCounter, ReconstructNearbyPeer) {
  const WideCounter local(1'000'000);
  // Peer three ticks ahead, we only see its 53 LSBs.
  const WideCounter peer(1'000'003);
  EXPECT_EQ(local.reconstruct_from_lsb(peer.lsb53()), peer);
}

TEST(WideCounter, ReconstructPeerBehind) {
  const WideCounter local(1'000'000);
  const WideCounter peer(999'998);
  EXPECT_EQ(local.reconstruct_from_lsb(peer.lsb53()), peer);
}

TEST(WideCounter, ReconstructAcross53BitWrap) {
  // Our counter just crossed 2^53; the peer's LSBs wrapped to a tiny value
  // while its true value is ahead of ours.
  WideCounter local = WideCounter::from_halves(0, kDtpPayloadMask - 1);
  WideCounter peer = local.plus(4);  // lsb = 2, msb = 1
  EXPECT_EQ(peer.lsb53(), 2u);
  EXPECT_EQ(peer.msb53(), 1u);
  EXPECT_EQ(local.reconstruct_from_lsb(peer.lsb53()), peer);
}

TEST(WideCounter, ReconstructBehindAcrossWrap) {
  WideCounter local = WideCounter::from_halves(1, 1);  // just past a wrap
  WideCounter peer = WideCounter::from_halves(0, kDtpPayloadMask - 2);  // 4 behind
  EXPECT_EQ(static_cast<long long>(local.diff(peer)), 4);
  EXPECT_EQ(local.reconstruct_from_lsb(peer.lsb53()), peer);
}

TEST(WideCounter, ReconstructNarrowRing) {
  // Parity mode uses 52-bit payloads.
  const WideCounter local(5'000'000);
  const WideCounter peer(5'000'007);
  const std::uint64_t lsb52 = peer.low64() & ((1ULL << 52) - 1);
  EXPECT_EQ(local.reconstruct_from_lsb(lsb52, 52), peer);
}

TEST(WideCounter, ReconstructIsExactWithinHalfRing) {
  const WideCounter local(1'000'000'000);
  for (long long delta : {-1000LL, -1LL, 0LL, 1LL, 1000LL, 123456789LL}) {
    const WideCounter peer = WideCounter(
        static_cast<std::uint64_t>(1'000'000'000LL + delta));
    EXPECT_EQ(local.reconstruct_from_lsb(peer.lsb53()), peer) << delta;
  }
}

TEST(WideCounter, ToStringFormat) {
  const auto c = WideCounter::from_halves(0xABC, 0x123);
  EXPECT_EQ(c.to_string(), "0x00000000000abc:00000000000123");
}

TEST(WideCounter, MaxIsWrapAwareAtTopOfRing) {
  // Raw-value comparison would call `wrapped` (tiny value) the smaller one.
  const WideCounter near_top = WideCounter::from_halves(kDtpPayloadMask, kDtpPayloadMask);
  const WideCounter wrapped = near_top.plus(7);
  EXPECT_EQ(max(near_top, wrapped), wrapped);
  EXPECT_EQ(max(wrapped, near_top), wrapped);
}

TEST(WideCounter, DiffAcross64BitBoundary) {
  // 2^64 sits mid-ring (bit 64 = bit 11 of the MSB half); values straddling
  // it are ordinary neighbors and must behave like any others.
  const WideCounter below = WideCounter::from_halves((1ULL << 11) - 1, kDtpPayloadMask - 2);
  const WideCounter above = below.plus(10);
  EXPECT_EQ(above.msb53(), 1ULL << 11);
  EXPECT_EQ(static_cast<long long>(above.diff(below)), 10);
  EXPECT_EQ(max(below, above), above);
  EXPECT_EQ(below.reconstruct_from_lsb(above.lsb53()), above);
}

// --- Forced-wrap synced pairs (satellite: offset math near wrap) -----------
//
// Drive a real synchronized network's counters up to a boundary, run across
// it with the invariant sentinel attached, and require total silence: no
// monotonicity violation (the wrap is not a decrease), no offset-bound
// violation (reconstruction and diff stay exact), live wrap self-checks.

namespace {

void run_forced_wrap(std::uint64_t seed, const WideCounter& force_value) {
  sim::Simulator sim(seed);
  net::NetworkParams np;
  np.cable.propagation_delay = from_us(1);
  net::Network net(sim, np);
  net::build_chain(net, 1);  // left - sw0 - right
  dtp::DtpNetwork dtp = dtp::enable_dtp(net, {});

  sim.run_until(from_ms(3));
  ASSERT_TRUE(dtp.all_synced());

  // Jump every agent to the boundary simultaneously; BEACONs keep the pair
  // agreeing on the max from here on, exactly as in a long-lived network.
  const fs_t t = sim.now();
  for (std::size_t i = 0; i < dtp.size(); ++i) dtp.agent(i).force_global(t, force_value);

  check::Sentinel sentinel(net, dtp, {});
  sim.run_until(t + from_ms(3));  // ~470k ticks: far across the boundary

  EXPECT_GT(sentinel.stats().wrap_checks, 0u);
  EXPECT_GT(sentinel.stats().offset_checks, 0u);
  EXPECT_GT(sentinel.stats().monotonic_checks, 0u);
  for (const auto& v : sentinel.violations()) ADD_FAILURE() << v.to_string();
  EXPECT_LE(dtp.max_pairwise_offset_ticks(sim.now()), sentinel.offset_bound_ticks());
}

}  // namespace

TEST(WideCounter, SyncedPairSurvives106BitWrap) {
  // ~200k units below 2^106: the counters wrap mid-run.
  run_forced_wrap(91, WideCounter::from_halves(kDtpPayloadMask, kDtpPayloadMask - 200'000));
}

TEST(WideCounter, SyncedPairSurvives64BitBoundary) {
  // Just below 2^64: the low64 word overflows mid-run (the boundary the
  // truncating fractional-offset implementation used to break at).
  run_forced_wrap(92, WideCounter::from_halves((1ULL << 11) - 1, kDtpPayloadMask - 200'000));
}

}  // namespace
}  // namespace dtpsim
