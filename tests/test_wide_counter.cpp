#include "common/wide_counter.hpp"

#include <gtest/gtest.h>

namespace dtpsim {
namespace {

TEST(WideCounter, DefaultIsZero) {
  WideCounter c;
  EXPECT_EQ(c.low64(), 0u);
  EXPECT_EQ(c.lsb53(), 0u);
  EXPECT_EQ(c.msb53(), 0u);
}

TEST(WideCounter, HalvesRoundTrip) {
  const auto c = WideCounter::from_halves(0x1FFF'FFFF'FFFF'F1ULL, 0xABCDEFULL);
  EXPECT_EQ(c.msb53(), 0x1FFF'FFFF'FFFF'F1ULL);
  EXPECT_EQ(c.lsb53(), 0xABCDEFULL);
}

TEST(WideCounter, HalvesMaskExtraBits) {
  // Feeding more than 53 bits must not leak into the other half.
  const auto c = WideCounter::from_halves(~0ULL, ~0ULL);
  EXPECT_EQ(c.msb53(), kDtpPayloadMask);
  EXPECT_EQ(c.lsb53(), kDtpPayloadMask);
}

TEST(WideCounter, AdvanceCarriesIntoMsb) {
  WideCounter c = WideCounter::from_halves(0, kDtpPayloadMask);
  c.advance(1);
  EXPECT_EQ(c.lsb53(), 0u);
  EXPECT_EQ(c.msb53(), 1u);
}

TEST(WideCounter, AdvanceWrapsModulo106) {
  WideCounter c = WideCounter::from_halves(kDtpPayloadMask, kDtpPayloadMask);
  c.advance(1);
  EXPECT_EQ(c.value(), 0u);
}

TEST(WideCounter, PlusIsNonMutating) {
  const WideCounter c(10);
  const WideCounter d = c.plus(5);
  EXPECT_EQ(c.low64(), 10u);
  EXPECT_EQ(d.low64(), 15u);
}

TEST(WideCounter, DiffSmallValues) {
  const WideCounter a(100), b(97);
  EXPECT_EQ(static_cast<long long>(a.diff(b)), 3);
  EXPECT_EQ(static_cast<long long>(b.diff(a)), -3);
  EXPECT_EQ(static_cast<long long>(a.diff(a)), 0);
}

TEST(WideCounter, DiffAcross106BitWrap) {
  WideCounter near_top = WideCounter::from_halves(kDtpPayloadMask, kDtpPayloadMask);
  const WideCounter wrapped = near_top.plus(5);  // wraps to 4
  EXPECT_EQ(static_cast<long long>(wrapped.diff(near_top)), 5);
  EXPECT_EQ(static_cast<long long>(near_top.diff(wrapped)), -5);
}

TEST(WideCounter, Ordering) {
  const WideCounter a(1), b(2);
  EXPECT_LT(a, b);
  EXPECT_EQ(max(a, b), b);
  EXPECT_EQ(max(b, a), b);
}

TEST(WideCounter, ReconstructNearbyPeer) {
  const WideCounter local(1'000'000);
  // Peer three ticks ahead, we only see its 53 LSBs.
  const WideCounter peer(1'000'003);
  EXPECT_EQ(local.reconstruct_from_lsb(peer.lsb53()), peer);
}

TEST(WideCounter, ReconstructPeerBehind) {
  const WideCounter local(1'000'000);
  const WideCounter peer(999'998);
  EXPECT_EQ(local.reconstruct_from_lsb(peer.lsb53()), peer);
}

TEST(WideCounter, ReconstructAcross53BitWrap) {
  // Our counter just crossed 2^53; the peer's LSBs wrapped to a tiny value
  // while its true value is ahead of ours.
  WideCounter local = WideCounter::from_halves(0, kDtpPayloadMask - 1);
  WideCounter peer = local.plus(4);  // lsb = 2, msb = 1
  EXPECT_EQ(peer.lsb53(), 2u);
  EXPECT_EQ(peer.msb53(), 1u);
  EXPECT_EQ(local.reconstruct_from_lsb(peer.lsb53()), peer);
}

TEST(WideCounter, ReconstructBehindAcrossWrap) {
  WideCounter local = WideCounter::from_halves(1, 1);  // just past a wrap
  WideCounter peer = WideCounter::from_halves(0, kDtpPayloadMask - 2);  // 4 behind
  EXPECT_EQ(static_cast<long long>(local.diff(peer)), 4);
  EXPECT_EQ(local.reconstruct_from_lsb(peer.lsb53()), peer);
}

TEST(WideCounter, ReconstructNarrowRing) {
  // Parity mode uses 52-bit payloads.
  const WideCounter local(5'000'000);
  const WideCounter peer(5'000'007);
  const std::uint64_t lsb52 = peer.low64() & ((1ULL << 52) - 1);
  EXPECT_EQ(local.reconstruct_from_lsb(lsb52, 52), peer);
}

TEST(WideCounter, ReconstructIsExactWithinHalfRing) {
  const WideCounter local(1'000'000'000);
  for (long long delta : {-1000LL, -1LL, 0LL, 1LL, 1000LL, 123456789LL}) {
    const WideCounter peer = WideCounter(
        static_cast<std::uint64_t>(1'000'000'000LL + delta));
    EXPECT_EQ(local.reconstruct_from_lsb(peer.lsb53()), peer) << delta;
  }
}

TEST(WideCounter, ToStringFormat) {
  const auto c = WideCounter::from_halves(0xABC, 0x123);
  EXPECT_EQ(c.to_string(), "0x00000000000abc:00000000000123");
}

}  // namespace
}  // namespace dtpsim
