// Engine differential harness: the same campaign run with 2/4 worker
// threads, with the tick-bridging engine, or both, must produce sentinel
// digests bit-identical to the serial cycle-exact run (offset samples, event
// counts, frame counts, FIFO crossings, agent adjustments). Carries the
// "parallel" label so the sanitize-threads preset runs it under TSan.

#include <gtest/gtest.h>

#include "stress/runner.hpp"

using namespace dtpsim;

namespace {

stress::StressSpec differential_spec(std::uint32_t threads) {
  stress::StressSpec s;
  s.sim_seed = 777;
  s.topo = stress::TopoKind::kPaperTree;
  s.beacon_interval_ticks = 200;
  s.ppm_spread = 100.0;
  // >= 1 us of propagation gives the conservative partitioner lookahead.
  s.propagation_delay = from_us(1);
  s.n_flows = 3;
  s.frame_bytes = 512;
  s.rate_gbps = 2.0;
  s.threads = threads;
  s.settle = from_ms(3);
  s.horizon = from_ms(4);
  return s;
}

stress::StressSpec hier_flap_spec(std::uint32_t threads) {
  // Competing sources (stratum-1 GPS on S4, stratum-2 island on S11) with a
  // mid-run stratum flap on the GPS: selection churn, falseticker screens,
  // and the sentinel's served-timeline digest all have to stay bit-identical
  // across thread counts.
  stress::StressSpec s = differential_spec(threads);
  s.hier = true;
  chaos::FaultDescriptor flap;
  flap.kind = chaos::FaultKind::kStratumFlap;
  flap.a = stress::hier_server_hosts(s).first;
  flap.at = from_ms(3) + from_us(200);
  flap.count = 3;
  flap.period = from_us(150);
  flap.magnitude = 5;  // alternate (worse) advertised stratum
  s.faults.push_back(flap);
  s.horizon =
      stress::fault_end(flap) + stress::recovery_margin(flap.kind) + from_us(300);
  return s;
}

}  // namespace

TEST(StressDifferential, TwoThreadDigestMatchesSerial) {
  const stress::CampaignResult r = stress::run_differential(differential_spec(2));
  for (const auto& v : r.violations) ADD_FAILURE() << v.to_string();
  EXPECT_GT(r.shards, 1);
}

TEST(StressDifferential, FourThreadDigestMatchesSerial) {
  const stress::CampaignResult r = stress::run_differential(differential_spec(4));
  for (const auto& v : r.violations) ADD_FAILURE() << v.to_string();
  EXPECT_GT(r.shards, 1);
}

TEST(StressDifferential, FourThreadWithFaultsMatchesSerial) {
  stress::StressSpec s = differential_spec(4);
  // A mid-run link flap plus a BER burst: fault handling itself must stay
  // deterministic across thread counts.
  chaos::FaultDescriptor flap;
  flap.kind = chaos::FaultKind::kLinkFlap;
  flap.a = "S0";
  flap.b = "S2";
  flap.at = from_ms(3) + from_us(300);
  flap.duration = from_us(80);
  s.faults.push_back(flap);

  chaos::FaultDescriptor ber;
  ber.kind = chaos::FaultKind::kBerBurst;
  ber.a = "S1";
  ber.b = "S4";
  ber.at = from_ms(3) + from_us(500);
  ber.duration = from_us(120);
  ber.magnitude = 1e-5;
  s.faults.push_back(ber);

  s.horizon = stress::fault_end(ber) + stress::recovery_margin(ber.kind) + from_us(300);

  const stress::CampaignResult r = stress::run_differential(s);
  for (const auto& v : r.violations) ADD_FAILURE() << v.to_string();
}

TEST(StressDifferential, BridgedSerialDigestMatchesExact) {
  stress::StressSpec s = differential_spec(1);
  s.bridged = true;
  const stress::CampaignResult r = stress::run_differential(s);
  for (const auto& v : r.violations) ADD_FAILURE() << v.to_string();
}

TEST(StressDifferential, BridgedTwoThreadDigestMatchesExactSerial) {
  stress::StressSpec s = differential_spec(2);
  s.bridged = true;
  const stress::CampaignResult r = stress::run_differential(s);
  for (const auto& v : r.violations) ADD_FAILURE() << v.to_string();
  EXPECT_GT(r.shards, 1);
}

TEST(StressDifferential, BridgedFourThreadWithFaultsMatchesExactSerial) {
  stress::StressSpec s = differential_spec(4);
  s.bridged = true;
  // Faults land inside bridged quiet spans: the flap exercises the purge /
  // bridge_cancel paths, the BER burst corrupts blocks riding as bridged
  // arrival steps.
  chaos::FaultDescriptor flap;
  flap.kind = chaos::FaultKind::kLinkFlap;
  flap.a = "S0";
  flap.b = "S2";
  flap.at = from_ms(3) + from_us(300);
  flap.duration = from_us(80);
  s.faults.push_back(flap);

  chaos::FaultDescriptor ber;
  ber.kind = chaos::FaultKind::kBerBurst;
  ber.a = "S1";
  ber.b = "S4";
  ber.at = from_ms(3) + from_us(500);
  ber.duration = from_us(120);
  ber.magnitude = 1e-5;
  s.faults.push_back(ber);

  s.horizon = stress::fault_end(ber) + stress::recovery_margin(ber.kind) + from_us(300);

  const stress::CampaignResult r = stress::run_differential(s);
  for (const auto& v : r.violations) ADD_FAILURE() << v.to_string();
}

TEST(StressDifferential, HierarchyStratumFlapTwoThreadMatchesSerial) {
  const stress::CampaignResult r = stress::run_differential(hier_flap_spec(2));
  for (const auto& v : r.violations) ADD_FAILURE() << v.to_string();
  EXPECT_GT(r.shards, 1);
  EXPECT_GT(r.sentinel_stats.utc_checks, 0u)
      << "the UTC monitors must actually be in the digest";
}

TEST(StressDifferential, HierarchyStratumFlapFourThreadMatchesSerial) {
  const stress::CampaignResult r = stress::run_differential(hier_flap_spec(4));
  for (const auto& v : r.violations) ADD_FAILURE() << v.to_string();
  EXPECT_GT(r.shards, 1);
}

namespace {

stress::StressSpec gray_spec(std::uint32_t threads) {
  // Gray tier armed: a frozen counter mid-run drives the watchdog through
  // quarantine -> backoff -> re-INIT -> probation. Every ladder decision
  // (including the per-slot jitter draws) folds into the digest, so the
  // serial and threaded runs must agree bit for bit.
  stress::StressSpec s = differential_spec(threads);
  s.gray = true;
  chaos::FaultDescriptor frozen;
  frozen.kind = chaos::FaultKind::kFrozenCounter;
  frozen.a = "S4";
  frozen.b = "S1";
  frozen.at = from_ms(3) + from_us(200);
  frozen.duration = from_us(400);
  s.faults.push_back(frozen);
  s.horizon = stress::fault_end(frozen) + stress::recovery_margin(frozen.kind) +
              from_us(300);
  return s;
}

}  // namespace

TEST(StressDifferential, GrayWatchdogTwoThreadMatchesSerial) {
  const stress::CampaignResult r = stress::run_differential(gray_spec(2));
  for (const auto& v : r.violations) ADD_FAILURE() << v.to_string();
  EXPECT_GT(r.shards, 1);
  EXPECT_GT(r.sentinel_stats.watchdog_checks, 0u)
      << "the watchdog invariants must actually be in the digest";
}

TEST(StressDifferential, GrayWatchdogFourThreadMatchesSerial) {
  const stress::CampaignResult r = stress::run_differential(gray_spec(4));
  for (const auto& v : r.violations) ADD_FAILURE() << v.to_string();
  EXPECT_GT(r.shards, 1);
}

TEST(StressDifferential, GeneratedParallelCampaignsMatchSerial) {
  int checked = 0;
  for (std::uint32_t i = 0; i < 32 && checked < 2; ++i) {
    const stress::StressSpec s = stress::generate(/*seed=*/97, i);
    if (s.threads <= 1) continue;
    ++checked;
    const stress::CampaignResult r = stress::run_differential(s);
    for (const auto& v : r.violations)
      ADD_FAILURE() << "campaign " << i << ": " << v.to_string() << "\nrepro:\n"
                    << stress::to_text(s);
  }
  EXPECT_EQ(checked, 2);
}

TEST(StressDifferential, GeneratedBridgedCampaignsMatchExactSerial) {
  int checked = 0;
  for (std::uint32_t i = 0; i < 64 && checked < 2; ++i) {
    const stress::StressSpec s = stress::generate(/*seed=*/97, i);
    if (!s.bridged) continue;
    ++checked;
    const stress::CampaignResult r = stress::run_differential(s);
    for (const auto& v : r.violations)
      ADD_FAILURE() << "campaign " << i << ": " << v.to_string() << "\nrepro:\n"
                    << stress::to_text(s);
  }
  EXPECT_EQ(checked, 2);
}
