#include "phy/encoding_8b10b.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dtp/messages_1g.hpp"

namespace dtpsim::phy {
namespace {

int ones10(Symbol10 s) { return __builtin_popcount(static_cast<unsigned>(s) & 0x3FF); }

TEST(Encoding8b10b, KnownK285Symbols) {
  // The most famous 10-bit codes in networking.
  Encoder8b10b enc_neg(Disparity::kNegative);
  EXPECT_EQ(enc_neg.encode_control(KCode::kK28_5), 0b0011111010);
  Encoder8b10b enc_pos(Disparity::kPositive);
  EXPECT_EQ(enc_pos.encode_control(KCode::kK28_5), 0b1100000101);
}

TEST(Encoding8b10b, RoundTripAllBytesBothDisparities) {
  for (auto rd : {Disparity::kNegative, Disparity::kPositive}) {
    for (int b = 0; b < 256; ++b) {
      Encoder8b10b enc(rd);
      Decoder8b10b dec(rd);
      const Symbol10 s = enc.encode_data(static_cast<std::uint8_t>(b));
      const auto d = dec.decode(s);
      ASSERT_TRUE(d.has_value()) << "byte " << b;
      EXPECT_EQ(d->byte, b);
      EXPECT_FALSE(d->is_control);
    }
  }
}

TEST(Encoding8b10b, RoundTripAllControlCodes) {
  for (auto rd : {Disparity::kNegative, Disparity::kPositive}) {
    for (KCode k : {KCode::kK28_0, KCode::kK28_1, KCode::kK28_2, KCode::kK28_3,
                    KCode::kK28_4, KCode::kK28_5, KCode::kK28_6, KCode::kK28_7,
                    KCode::kK23_7, KCode::kK27_7, KCode::kK29_7, KCode::kK30_7}) {
      Encoder8b10b enc(rd);
      Decoder8b10b dec(rd);
      const auto d = dec.decode(enc.encode_control(k));
      ASSERT_TRUE(d.has_value());
      EXPECT_EQ(d->byte, static_cast<std::uint8_t>(k));
      EXPECT_TRUE(d->is_control);
    }
  }
}

TEST(Encoding8b10b, IllegalKCodeThrows) {
  Encoder8b10b enc;
  EXPECT_THROW(enc.encode_control(static_cast<KCode>(0x42)), std::invalid_argument);
}

TEST(Encoding8b10b, EverySymbolDisparityBounded) {
  // Each 10-bit symbol carries 4, 5, or 6 ones (disparity -2, 0, +2).
  for (auto rd : {Disparity::kNegative, Disparity::kPositive}) {
    for (int b = 0; b < 256; ++b) {
      Encoder8b10b enc(rd);
      const int n = ones10(enc.encode_data(static_cast<std::uint8_t>(b)));
      EXPECT_GE(n, 4) << b;
      EXPECT_LE(n, 6) << b;
    }
  }
}

TEST(Encoding8b10b, RunningDisparityStaysBounded) {
  // A long random byte stream must keep cumulative ones-zeros within +-3
  // bits at every symbol boundary (|RD| <= 1 in half-bit units).
  Rng rng(71);
  Encoder8b10b enc;
  int cumulative = 0;
  for (int i = 0; i < 20'000; ++i) {
    const Symbol10 s = enc.encode_data(static_cast<std::uint8_t>(rng.uniform(256)));
    cumulative += 2 * ones10(s) - 10;
    ASSERT_GE(cumulative, -2);
    ASSERT_LE(cumulative, 2);
  }
}

TEST(Encoding8b10b, RunLengthAtMostFive) {
  // The code's whole purpose: no more than 5 identical bits in a row, even
  // across symbol boundaries. This exercises the D.x.A7 selection rule.
  Rng rng(72);
  Encoder8b10b enc;
  int run = 0;
  int last_bit = -1;
  for (int i = 0; i < 50'000; ++i) {
    const Symbol10 s = enc.encode_data(static_cast<std::uint8_t>(rng.uniform(256)));
    for (int bit = 9; bit >= 0; --bit) {  // wire order, a first
      const int v = (s >> bit) & 1;
      if (v == last_bit) {
        ++run;
        ASSERT_LE(run, 5) << "run of " << run << " at symbol " << i;
      } else {
        run = 1;
        last_bit = v;
      }
    }
  }
}

TEST(Encoding8b10b, StreamRoundTripWithControls) {
  Rng rng(73);
  Encoder8b10b enc;
  Decoder8b10b dec;
  for (int i = 0; i < 5'000; ++i) {
    if (rng.bernoulli(0.1)) {
      const auto d = dec.decode(enc.encode_control(KCode::kK28_5));
      ASSERT_TRUE(d && d->is_control);
    } else {
      const auto byte = static_cast<std::uint8_t>(rng.uniform(256));
      const auto d = dec.decode(enc.encode_data(byte));
      ASSERT_TRUE(d && !d->is_control);
      ASSERT_EQ(d->byte, byte);
    }
  }
}

TEST(Encoding8b10b, InvalidSymbolsRejected) {
  Decoder8b10b dec;
  EXPECT_FALSE(dec.decode(0b0000000000).has_value());
  EXPECT_FALSE(dec.decode(0b1111111111).has_value());
}

TEST(Encoding8b10b, MostBitFlipsDetected) {
  // Single-bit corruption usually produces a code violation or disparity
  // error; measure the detection rate (it is high but not 100% — that is
  // why Ethernet still carries a CRC).
  Rng rng(74);
  int detected = 0;
  const int trials = 2'000;
  for (int i = 0; i < trials; ++i) {
    Encoder8b10b enc;
    Decoder8b10b dec;
    const auto byte = static_cast<std::uint8_t>(rng.uniform(256));
    Symbol10 s = enc.encode_data(byte);
    s ^= static_cast<Symbol10>(1u << rng.uniform(10));
    const auto d = dec.decode(s);
    if (!d || d->byte != byte || d->is_control) ++detected;
  }
  EXPECT_GT(detected, trials * 7 / 10);
}

TEST(Encoding8b10b, CommaDetection) {
  Encoder8b10b enc;
  EXPECT_TRUE(is_comma(enc.encode_control(KCode::kK28_5)));
  Encoder8b10b enc2;
  EXPECT_FALSE(is_comma(enc2.encode_data(0x4A)));
}

// --- DTP over 1 GbE (Section 7) --------------------------------------------

TEST(Dtp1G, OrderedSetRoundTrip) {
  Encoder8b10b enc;
  dtp::Decoder1g dec;
  const dtp::Message m{dtp::MessageType::kBeacon, 0x000F'2345'6789'ABCDULL & kDtpPayloadMask};
  const auto symbols = dtp::encode_1g(m, enc);
  EXPECT_EQ(symbols.size(), dtp::kDtpOrderedSetSymbols);
  std::optional<dtp::Message> got;
  for (const auto s : symbols) {
    auto r = dec.feed(s);
    if (r) got = r;
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, m);
}

TEST(Dtp1G, StreamWithIdlesAndFramesBetween) {
  Rng rng(75);
  Encoder8b10b enc;
  dtp::Decoder1g dec;
  std::vector<dtp::Message> sent, received;
  for (int round = 0; round < 200; ++round) {
    // Idle ordered set /I1/: K28.5 D5.6.
    dec.feed(enc.encode_control(KCode::kK28_5));
    dec.feed(enc.encode_data(0xC5));
    // Random "frame" bytes bracketed by /S/ and /T/.
    dec.feed(enc.encode_control(KCode::kK27_7));
    for (int i = 0; i < 20; ++i)
      dec.feed(enc.encode_data(static_cast<std::uint8_t>(rng.uniform(256))));
    dec.feed(enc.encode_control(KCode::kK29_7));
    // A DTP set.
    const dtp::Message m{dtp::MessageType::kBeacon, rng() & kDtpPayloadMask};
    sent.push_back(m);
    for (const auto s : dtp::encode_1g(m, enc)) {
      if (auto r = dec.feed(s)) received.push_back(*r);
    }
  }
  EXPECT_EQ(received, sent);
}

TEST(Dtp1G, TruncatedSetDiscarded) {
  Encoder8b10b enc;
  dtp::Decoder1g dec;
  const dtp::Message m{dtp::MessageType::kBeacon, 777};
  auto symbols = dtp::encode_1g(m, enc);
  symbols.resize(4);  // interrupt the set
  for (const auto s : symbols) EXPECT_FALSE(dec.feed(s).has_value());
  // An idle comes next; the partial set must be dropped, not resumed.
  EXPECT_FALSE(dec.feed(enc.encode_control(KCode::kK28_5)).has_value());
  EXPECT_FALSE(dec.feed(enc.encode_data(0xC5)).has_value());
}

TEST(Dtp1G, CorruptionCountsViolation) {
  Encoder8b10b enc;
  dtp::Decoder1g dec;
  const dtp::Message m{dtp::MessageType::kBeacon, 12345};
  auto symbols = dtp::encode_1g(m, enc);
  symbols[3] = 0;  // illegal line code
  for (const auto s : symbols) dec.feed(s);
  EXPECT_GE(dec.violations(), 1u);
}

}  // namespace
}  // namespace dtpsim::phy
