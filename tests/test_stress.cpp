// Tier-1 coverage for the stress fuzzer: spec round-trips, a small
// fixed-seed campaign batch that must run violation-free, campaign
// determinism, and the full bug-to-repro pipeline exercised end to end
// against a surrogate bug (a deliberately impossible offset bound).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "stress/runner.hpp"
#include "stress/shrink.hpp"
#include "stress/spec.hpp"

using namespace dtpsim;

namespace {

constexpr std::uint64_t kBatchSeed = 20260806;

/// Small, known-converging campaign used by the targeted tests.
stress::StressSpec base_spec() {
  stress::StressSpec s;
  s.sim_seed = 4242;
  s.topo = stress::TopoKind::kPaperTree;
  s.beacon_interval_ticks = 200;
  s.ppm_spread = 50.0;
  s.enable_drift = false;
  s.propagation_delay = from_us(1);
  s.n_flows = 2;
  s.frame_bytes = 1522;
  s.saturate = false;
  s.rate_gbps = 2.0;
  s.threads = 1;
  s.settle = from_ms(3);
  s.horizon = from_ms(4);
  return s;
}

std::string violations_to_string(const stress::CampaignResult& r) {
  std::string out = "spec:\n" + stress::to_text(r.spec) + "violations:\n";
  for (const auto& v : r.violations) out += "  " + v.to_string() + "\n";
  return out;
}

}  // namespace

TEST(StressSpec, GeneratedSpecsRoundTripThroughText) {
  for (std::uint32_t i = 0; i < 12; ++i) {
    const stress::StressSpec s = stress::generate(kBatchSeed, i);
    SCOPED_TRACE("campaign " + std::to_string(i));
    EXPECT_EQ(s, stress::spec_from_text(stress::to_text(s)));
  }
}

TEST(StressSpec, GenerationIsDeterministicAndDiverse) {
  bool saw_faults = false, saw_parallel = false;
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(stress::generate(kBatchSeed, i), stress::generate(kBatchSeed, i));
    const stress::StressSpec s = stress::generate(kBatchSeed, i);
    saw_faults |= !s.faults.empty();
    saw_parallel |= s.threads > 1;
    EXPECT_GT(s.horizon, s.settle);
  }
  EXPECT_TRUE(saw_faults);
  EXPECT_TRUE(saw_parallel);
}

TEST(StressSpec, HierarchySectionRoundTripsAndValidates) {
  stress::StressSpec s = base_spec();
  s.hier = true;
  s.hier_holdover_ceiling = from_us(3);
  EXPECT_EQ(s, stress::spec_from_text(stress::to_text(s)));
  // Hierarchy-free specs keep the pre-hierarchy byte format.
  EXPECT_EQ(stress::to_text(base_spec()).find("hier "), std::string::npos);
  // A chain has only two hosts — no room for a client between the sources.
  stress::StressSpec chain = base_spec();
  chain.topo = stress::TopoKind::kChain;
  chain.hier = true;
  EXPECT_THROW(stress::spec_from_text(stress::to_text(chain)),
               std::invalid_argument);
}

TEST(StressSpec, GraySectionRoundTripsAndStaysOptional) {
  stress::StressSpec s = base_spec();
  s.gray = true;
  EXPECT_EQ(s, stress::spec_from_text(stress::to_text(s)));
  EXPECT_NE(stress::to_text(s).find("gray "), std::string::npos);
  // Gray-free specs keep the pre-gray byte format: old repro files replay
  // byte-identically through a round trip.
  EXPECT_EQ(stress::to_text(base_spec()).find("gray "), std::string::npos);
}

TEST(StressSpec, MalformedReproTextRejected) {
  const stress::StressSpec s = base_spec();
  const std::string good = stress::to_text(s);

  EXPECT_THROW(stress::spec_from_text("dtpsim-stress-repro v2\nend\n"),
               std::invalid_argument);
  // Missing the 'end' footer.
  EXPECT_THROW(stress::spec_from_text(good.substr(0, good.size() - 4)),
               std::invalid_argument);
  // Unknown section.
  EXPECT_THROW(stress::spec_from_text("dtpsim-stress-repro v1\nwibble a=1\nend\n"),
               std::invalid_argument);
  // A required section missing entirely.
  std::string no_run;
  for (std::size_t at = 0, nl; at < good.size(); at = nl + 1) {
    nl = good.find('\n', at);
    const std::string line = good.substr(at, nl - at);
    if (line.rfind("run ", 0) != 0) no_run += line + "\n";
  }
  EXPECT_THROW(stress::spec_from_text(no_run), std::invalid_argument);
}

TEST(StressRunner, FixedSeedBatchRunsClean) {
  stress::StressLimits limits;
  limits.max_faults = 2;
  const stress::BatchOutcome out = stress::run_batch(kBatchSeed, 4, limits);
  EXPECT_EQ(out.campaigns, 4u);
  EXPECT_GT(out.events_executed, 0u);
  for (const auto& f : out.failures) ADD_FAILURE() << violations_to_string(f);
}

TEST(StressRunner, CampaignIsDeterministic) {
  const stress::StressSpec s = base_spec();
  const stress::CampaignResult a = stress::run_campaign(s);
  const stress::CampaignResult b = stress::run_campaign(s);
  EXPECT_TRUE(a.clean()) << violations_to_string(a);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(StressRunner, SentinelMonitorsAreAllAlive) {
  const stress::CampaignResult r = stress::run_campaign(base_spec());
  EXPECT_TRUE(r.clean()) << violations_to_string(r);
  // Every monitor must have actually run — a silent no-op sentinel would
  // make the whole fuzzer vacuous.
  EXPECT_GT(r.sentinel_stats.samples, 0u);
  EXPECT_GT(r.sentinel_stats.monotonic_checks, 0u);
  EXPECT_GT(r.sentinel_stats.offset_checks, 0u);
  EXPECT_GT(r.sentinel_stats.overhead_checks, 0u);
  EXPECT_GT(r.sentinel_stats.wrap_checks, 0u);
  EXPECT_GT(r.sentinel_stats.tx_probe_checks, 0u);
  EXPECT_GT(r.sentinel_stats.fifo_probe_checks, 0u);
  // Paper tree: diameter 4 hops, default bound 4*D + 1.
  EXPECT_EQ(r.diameter_hops, 4u);
  EXPECT_DOUBLE_EQ(r.offset_bound_ticks, 17.0);
}

// The acceptance-path test: plant a surrogate bug (an offset bound no real
// network can hold), catch it, write a repro, replay it bit-exactly through
// the same code path `dtpsim --repro` uses, then shrink it and verify the
// minimized campaign still fails and is strictly smaller.
TEST(StressRepro, CaptureReplayShrinkEndToEnd) {
  stress::StressSpec s = base_spec();
  s.offset_bound_ticks = 1e-3;  // surrogate bug: impossible bound

  const stress::CampaignResult caught = stress::run_campaign(s);
  ASSERT_FALSE(caught.clean());
  ASSERT_EQ(caught.violations.front().kind, check::InvariantKind::kOffsetBound);

  const std::string path = testing::TempDir() + "dtpsim-repro-e2e.txt";
  stress::write_repro(caught.spec, path);
  EXPECT_EQ(stress::load_repro(path), s);

  // Replay goes through the identical load+run path as `dtpsim --repro`.
  const stress::CampaignResult replayed = stress::replay(path);
  ASSERT_EQ(replayed.violations.size(), caught.violations.size());
  for (std::size_t i = 0; i < caught.violations.size(); ++i) {
    EXPECT_EQ(replayed.violations[i].kind, caught.violations[i].kind);
    EXPECT_EQ(replayed.violations[i].at, caught.violations[i].at);
    EXPECT_EQ(replayed.violations[i].device, caught.violations[i].device);
    EXPECT_EQ(replayed.violations[i].observed, caught.violations[i].observed);
  }
  EXPECT_EQ(replayed.digest, caught.digest);

  const stress::ShrinkResult shrunk = stress::shrink(s, caught, /*max_runs=*/12);
  EXPECT_GE(shrunk.reductions, 1);
  EXPECT_LT(shrunk.minimal_size, shrunk.original_size);
  EXPECT_FALSE(shrunk.last_failure.clean());
  EXPECT_EQ(shrunk.last_failure.violations.front().kind,
            check::InvariantKind::kOffsetBound);
  // The minimal spec still round-trips, so the shrunken repro is writable.
  EXPECT_EQ(shrunk.minimal, stress::spec_from_text(stress::to_text(shrunk.minimal)));

  std::remove(path.c_str());
}

TEST(StressRepro, FaultScheduleSurvivesTheRoundTrip) {
  stress::StressLimits limits;
  limits.max_faults = 3;
  for (std::uint32_t i = 0; i < 24; ++i) {
    const stress::StressSpec s = stress::generate(kBatchSeed + 1, i, limits);
    if (s.faults.empty()) continue;
    const stress::StressSpec back = stress::spec_from_text(stress::to_text(s));
    ASSERT_EQ(back.faults.size(), s.faults.size());
    for (std::size_t f = 0; f < s.faults.size(); ++f) EXPECT_EQ(back.faults[f], s.faults[f]);
    return;  // one spec with faults is enough
  }
  FAIL() << "no generated spec had faults in 24 draws";
}
