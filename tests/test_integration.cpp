/// Capstone integration: the paper's whole world in one simulation.
///
/// The Fig. 5 tree runs DTP on every device; the same hosts simultaneously
/// run a PTP client and an NTP client against a timeserver leaf; daemons
/// serve software time; iperf-style load comes and goes; a link fails and
/// is re-cabled. At the end, every protocol must sit in its own precision
/// decade and DTP must never have budged.

#include <gtest/gtest.h>

#include "dtp/daemon.hpp"
#include "dtp/network.hpp"
#include "dtp_test_util.hpp"
#include "net/topology.hpp"
#include "ntp/ntp.hpp"
#include "ptp/client.hpp"
#include "ptp/grandmaster.hpp"
#include "ptp/transparent.hpp"

namespace dtpsim {
namespace {

using namespace dtpsim::literals;

TEST(Integration, EverythingAtOnce) {
  sim::Simulator sim(777);
  net::NetworkParams np;
  np.enable_drift = true;
  np.drift.step_ppm = 0.01;
  np.drift.update_interval = 10_ms;
  net::Network net(sim, np);
  auto tree = net::build_paper_tree(net);

  // DTP everywhere.
  dtp::DtpNetwork dtp = dtp::enable_dtp(net);

  // PTP: leaf S4 is the grandmaster, S7 and S10 are clients; the
  // aggregation switches act as transparent clocks.
  ptp::GrandmasterParams gp;
  gp.sync_interval = 250_ms;
  ptp::Grandmaster gm(sim, *tree.leaves[0], gp);
  std::vector<std::unique_ptr<ptp::TransparentClockAdapter>> tcs;
  for (auto* sw : net.switches())
    tcs.push_back(std::make_unique<ptp::TransparentClockAdapter>(*sw));
  ptp::PtpClientParams cp;
  cp.delay_req_interval = 187_ms;
  ptp::PtpClient ptp_c1(sim, *tree.leaves[3], gm.phc(), cp);
  ptp::PtpClient ptp_c2(sim, *tree.leaves[6], gm.phc(), cp);

  // NTP: S5 serves, S8 syncs.
  ntp::NtpServer ntp_server(sim, *tree.leaves[1]);
  ntp::NtpClientParams ncp;
  ncp.poll_interval = 250_ms;
  ntp::NtpClient ntp_client(sim, *tree.leaves[4], tree.leaves[1]->addr(),
                            ntp_server.clock(), ncp);

  // DTP daemons on two leaves.
  dtp::DaemonParams dp;
  dp.poll_period = 20_ms;
  dp.sample_period = 5_ms;
  dtp::Daemon daemon_a(sim, *dtp.agent_of(tree.leaves[2]), dp, 19.0);
  dtp::Daemon daemon_b(sim, *dtp.agent_of(tree.leaves[7]), dp, -12.0);

  gm.start();
  ptp_c1.start();
  ptp_c2.start();
  ntp_client.start();
  daemon_a.start();
  daemon_b.start();

  // Converge everything.
  sim.run_until(5_sec);

  // Phase 2: cross-aggregation load appears.
  net::TrafficParams tp;
  tp.rate_bps = 4e9;
  tp.burst_frames = 32;
  net.add_traffic(*tree.leaves[2], tree.leaves[5]->addr(), tp).start();
  net.add_traffic(*tree.leaves[5], tree.leaves[2]->addr(), tp).start();
  sim.run_until(7_sec);

  // Phase 3: a leaf link fails and is re-cabled (DTP must re-INIT). S11 is
  // leaf index 7; its cable is the last one the tree builder created.
  dtp::Agent* a11 = dtp.agent_of(tree.leaves[7]);
  ASSERT_EQ(a11->port_logic(0).state(), dtp::PortState::kSynced);
  phy::PhyPort& leaf_port = tree.leaves[7]->nic_port();
  phy::PhyPort* agg_port = leaf_port.peer();
  ASSERT_NE(agg_port, nullptr);
  net.cables().back()->disconnect();
  ASSERT_EQ(a11->port_logic(0).state(), dtp::PortState::kDown);
  sim.run_until(7'500_ms);
  net.connect_ports(leaf_port, *agg_port);
  sim.run_until(10_sec);

  // --- Verdicts ----------------------------------------------------------
  // DTP: everyone (including the re-cabled S11) within the 4-hop bound.
  EXPECT_TRUE(dtp.all_synced());
  double dtp_worst = 0;
  dtp::testutil::run_sampled(sim, 11_sec, 200_us, [&](fs_t t) {
    dtp_worst = std::max(dtp_worst, dtp.max_pairwise_offset_ticks(t));
  });
  EXPECT_LE(dtp_worst, 17.0) << "4TD (16) + sampling tick";

  // Daemons agree to software precision.
  const fs_t now = sim.now();
  EXPECT_LT(std::abs(daemon_a.get_dtp_counter(now) - daemon_b.get_dtp_counter(now)),
            40.0);

  // PTP: locked, somewhere between tens of ns and the sub-ms band (the
  // tree is only lightly congested on the PTP paths).
  for (auto* c : {&ptp_c1, &ptp_c2}) {
    EXPECT_GT(c->syncs_completed(), 20u);
    const auto& pts = c->true_series().points();
    double tail = 0;
    for (std::size_t i = pts.size() * 3 / 4; i < pts.size(); ++i)
      tail = std::max(tail, std::abs(pts[i].value));
    EXPECT_LT(tail, 500'000.0);
    EXPECT_GT(tail, 2.0) << "PTP cannot be implausibly perfect";
  }

  // NTP: microsecond decade.
  {
    const auto& pts = ntp_client.true_series().points();
    double tail = 0;
    for (std::size_t i = pts.size() * 3 / 4; i < pts.size(); ++i)
      tail = std::max(tail, std::abs(pts[i].value));
    EXPECT_LT(tail, 2'000'000.0);
    EXPECT_GT(tail, 100.0);
  }

  // Zero-overhead invariant survived everything: DTP added no frames. All
  // frames on leaf S6 (no apps there beyond DTP) must be... none sent.
  EXPECT_EQ(tree.leaves[2]->nic().stats().tx_frames > 0, true)
      << "traffic source did send";
  // S9 (leaves[5] is a traffic node; use S10 = leaves[6], a pure PTP client):
  // its NIC sent only PTP frames, counted by the client.
  EXPECT_LE(tree.leaves[6]->nic().stats().tx_frames,
            ptp_c2.delay_reqs_sent() + 5);
}

}  // namespace
}  // namespace dtpsim
