/// Time-as-a-service (DESIGN.md §16): the lock-free timebase page, the
/// reader fleet, and the three page-consuming app workloads (OWD, LWW,
/// TDMA) — fault-free cleanliness, serial-vs-parallel bit-exactness, and
/// detection of injected failures under the canonical chaos campaign.

#include "dtp/timebase.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "apps/harness.hpp"
#include "chaos/campaign.hpp"
#include "chaos/engine.hpp"
#include "check/sentinel.hpp"
#include "dtp/daemon.hpp"
#include "dtp/network.hpp"
#include "dtp_test_util.hpp"
#include "net/frame.hpp"
#include "net/topology.hpp"

namespace dtpsim {
namespace {

using namespace dtpsim::literals;
using dtp::TimebasePage;
using dtp::TimebaseSample;
using dtp::TimebaseSnapshot;

// ---------------------------------------------------------------------------
// Page mechanics
// ---------------------------------------------------------------------------

TEST(TimebasePage, AdvanceKeepsIntegerExactnessPastDoubleCliff) {
  // At 2^60 units a double quantizes to 256-unit steps; the split
  // representation must still resolve single units and sub-unit fractions.
  const std::int64_t base = std::int64_t{1} << 60;
  std::int64_t u = 0;
  double f = 0.0;
  TimebasePage::advance(base, 0.25, 0.5, &u, &f);
  EXPECT_EQ(u, base);
  EXPECT_DOUBLE_EQ(f, 0.75);
  TimebasePage::advance(base, 0.75, 0.5, &u, &f);
  EXPECT_EQ(u, base + 1);
  EXPECT_DOUBLE_EQ(f, 0.25);
  TimebasePage::advance(base, 0.25, -0.5, &u, &f);
  EXPECT_EQ(u, base - 1);
  EXPECT_DOUBLE_EQ(f, 0.75);
  // A large fractional delta still lands on the exact integer grid.
  TimebasePage::advance(base, 0.0, 1234567.875, &u, &f);
  EXPECT_EQ(u, base + 1234567);
  EXPECT_NEAR(f, 0.875, 1e-9);
  // Whereas the double view of the same walk cannot see one unit at all.
  const double dbl = static_cast<double>(base);
  EXPECT_EQ(dbl + 1.0, dbl) << "double addition saturates at this magnitude";
}

TEST(TimebasePage, PublishReadRoundtripAndStaleness) {
  TimebasePage page;
  EXPECT_FALSE(page.read(0).valid) << "unpublished page must read invalid";

  TimebaseSnapshot s;
  s.anchor_units = 1'000'000;
  s.anchor_frac = 0.5;
  s.anchor_tsc = 3'000'000;
  s.units_per_tsc = 0.052;  // ~156.25 MHz counter vs 3 GHz TSC
  s.unc_base_units = 4.0;
  s.unc_per_tsc = 1e-7;
  s.stale_after_tsc = 3'300'000;
  s.epoch = 7;
  s.flags = TimebasePage::kFlagValid;
  page.publish(s);
  EXPECT_EQ(page.publishes(), 1u);

  TimebaseSnapshot back;
  ASSERT_TRUE(page.snapshot(&back));
  EXPECT_EQ(back.anchor_units, s.anchor_units);
  EXPECT_EQ(back.stale_after_tsc, s.stale_after_tsc);
  EXPECT_EQ(back.epoch, 7u);

  // Extrapolation: 100k TSC counts of age -> 5200 units.
  const TimebaseSample fresh = page.read(3'100'000);
  EXPECT_TRUE(fresh.valid);
  EXPECT_FALSE(fresh.stale);
  EXPECT_EQ(fresh.epoch, 7u);
  EXPECT_EQ(fresh.units, 1'005'200);
  EXPECT_NEAR(fresh.frac, 0.5, 1e-6);
  EXPECT_NEAR(fresh.uncertainty_units, 4.0 + 100'000 * 1e-7, 1e-9);

  // Past the deadline the sample is still served but flagged stale.
  const TimebaseSample old = page.read(3'400'000);
  EXPECT_TRUE(old.valid);
  EXPECT_TRUE(old.stale);
  EXPECT_GT(old.uncertainty_units, fresh.uncertainty_units);

  // The raw words carry a checksum that matches their content.
  const TimebasePage::RawWords raw = page.read_raw();
  EXPECT_EQ(TimebasePage::checksum(raw.words.data()),
            raw.words[TimebasePage::kPayloadWords]);
  EXPECT_EQ(raw.seq % 2, 0u);
}

class TimebasePageTorn : public ::testing::TestWithParam<int> {};

TEST_P(TimebasePageTorn, ConcurrentReadersNeverObserveATornSnapshot) {
  // Real OS threads against the seqlock (this is what TSan instruments in
  // the sanitize-threads slice). The writer publishes snapshots whose words
  // are all derived from one counter; a reader that ever sees a mix of two
  // publications fails the checksum or the derivation invariant.
  TimebasePage page;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_reads{0};
  std::atomic<std::uint64_t> torn{0};

  std::thread writer([&] {
    TimebaseSnapshot s;
    for (std::uint64_t k = 1; !stop.load(std::memory_order_relaxed); ++k) {
      s.anchor_units = static_cast<std::int64_t>(k);
      s.anchor_frac = static_cast<double>(k % 997) / 997.0;
      s.anchor_tsc = static_cast<std::int64_t>(k * 3);
      s.units_per_tsc = static_cast<double>(k % 53);
      s.unc_base_units = static_cast<double>(k % 31);
      s.unc_per_tsc = static_cast<double>(k % 17);
      s.stale_after_tsc = static_cast<std::int64_t>(k * 3 + 1000);
      s.epoch = static_cast<std::uint32_t>(k & 0xFFFF);
      s.flags = TimebasePage::kFlagValid;
      page.publish(s);
    }
  });

  const int n_readers = GetParam();
  std::vector<std::thread> readers;
  for (int r = 0; r < n_readers; ++r) {
    readers.emplace_back([&] {
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const TimebasePage::RawWords raw = page.read_raw();
        if (raw.words[0] == 0) continue;  // nothing published yet
        ++local;
        if (TimebasePage::checksum(raw.words.data()) !=
            raw.words[TimebasePage::kPayloadWords]) {
          torn.fetch_add(1);
          continue;
        }
        // Cross-word derivation invariants of the writer above.
        const auto k = raw.words[0];
        std::uint64_t tsc_bits = raw.words[2];
        std::int64_t tsc;
        std::memcpy(&tsc, &tsc_bits, sizeof(tsc));
        if (static_cast<std::uint64_t>(tsc) != k * 3) torn.fetch_add(1);
        std::uint64_t deadline_bits = raw.words[6];
        std::int64_t deadline;
        std::memcpy(&deadline, &deadline_bits, sizeof(deadline));
        if (static_cast<std::uint64_t>(deadline) != k * 3 + 1000) torn.fetch_add(1);
      }
      total_reads.fetch_add(local);
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u) << "a reader observed a torn snapshot";
  EXPECT_GT(total_reads.load(), 1000u) << "readers barely ran";
  EXPECT_GT(page.publishes(), 100u) << "writer barely ran";
}

INSTANTIATE_TEST_SUITE_P(Threads, TimebasePageTorn, ::testing::Values(2, 4));

// ---------------------------------------------------------------------------
// Daemon-published page semantics
// ---------------------------------------------------------------------------

dtp::DaemonParams app_daemon_params() {
  dtp::DaemonParams dp;
  dp.poll_period = from_ms(1);
  dp.sample_period = 0;
  dp.max_anchor_age = from_us(2500);
  return dp;
}

TEST(TimebaseDaemon, StalenessFlagReachesReadersDuringPcieStorm) {
  dtp::testutil::TwoNodes n(501, 50.0, -50.0);
  dtp::DaemonParams dp;
  dp.poll_period = from_ms(1);
  dp.sample_period = 0;
  dp.max_anchor_age = from_ms(2);
  dtp::Daemon d(n.sim, *n.agent_a, dp, 10.0);
  d.start();
  n.sim.run_until(10_ms);
  ASSERT_TRUE(d.calibrated());
  TimebaseSample s = d.timebase_sample(n.sim.now());
  ASSERT_TRUE(s.valid);
  EXPECT_FALSE(s.stale);
  const std::uint32_t epoch0 = s.epoch;
  const double fresh_unc = s.uncertainty_units;

  // A storm far beyond the reject margin: every MMIO read is discarded, the
  // anchor ages out, and the *page* must tell readers so.
  d.set_pcie_stress(from_us(10), 0.0, 0);
  n.sim.run_until(n.sim.now() + 6_ms);
  EXPECT_TRUE(d.stale(n.sim.now()));
  s = d.timebase_sample(n.sim.now());
  EXPECT_TRUE(s.valid) << "a stale page still serves";
  EXPECT_TRUE(s.stale) << "the staleness deadline must reach page readers";
  EXPECT_GT(s.uncertainty_units, fresh_unc) << "uncertainty must grow with age";

  // Storm clears: the window re-learns (storm RTTs fill the ring), a poll
  // is accepted, and the page is fresh again under the same epoch.
  d.clear_pcie_stress();
  n.sim.run_until(n.sim.now() + 80_ms);
  s = d.timebase_sample(n.sim.now());
  EXPECT_TRUE(s.valid);
  EXPECT_FALSE(s.stale) << "page must recover after the storm";
  EXPECT_EQ(s.epoch, epoch0) << "no restart happened; epoch must not move";

  // A restart, by contrast, bumps the epoch.
  d.stop();
  d.start();
  n.sim.run_until(n.sim.now() + 5_ms);
  s = d.timebase_sample(n.sim.now());
  EXPECT_EQ(s.epoch, epoch0 + 1) << "restart must be visible to readers";
}

// ---------------------------------------------------------------------------
// App workloads on the paper tree
// ---------------------------------------------------------------------------

net::NetworkParams app_net_params() {
  net::NetworkParams np = chaos::CanonicalCampaign::net_params();
  // App frames ride the top 802.1p class so a backlogged bulk queue cannot
  // add 100 us of head-of-line wait to a 0.8 us TDMA guard band.
  np.mac.priority_queues = 8;
  return np;
}

/// Bulk background load on the leaves that are NOT TDMA senders. A TDMA
/// sender's verdict is the hardware TX instant; sourcing saturating MTU bulk
/// from the same NIC would add up to one in-flight frame (~1.23 us) of
/// non-preemptable wait — more than the whole guard band — and turn the test
/// into a measurement of the MAC, not of the clock.
void start_app_load(net::Network& net, const net::PaperTreeTopology& tree) {
  net::TrafficParams tp;
  tp.saturate = true;
  tp.frame_bytes = net::kMtuFrameBytes;
  const std::size_t n = tree.leaves.size();
  for (std::size_t i : {std::size_t{0}, std::size_t{3}, std::size_t{4},
                        std::size_t{7}}) {
    net.add_traffic(*tree.leaves[i], tree.leaves[(i + 3) % n]->addr(), tp).start();
  }
}

apps::AppHarnessParams harness_params(bool exclude_crash_victim) {
  apps::AppHarnessParams hp;
  hp.daemon = app_daemon_params();
  hp.readers_per_host = 4;
  hp.reader_period = from_us(50);
  if (!exclude_crash_victim) {
    // Host list = all 8 leaves, indices 1:1 with tree.leaves.
    hp.tdma_senders = {1, 2, 5, 6};
    hp.lww_ring = {0, 1, 2, 3, 5, 7, 6};
    hp.owd_pairs = {{0, 3}, {5, 1}, {7, 2}};
  } else {
    // Campaign runs drop leaf4 (the node_crash victim powers off; a daemon
    // must not read a dead agent). Host list [l0 l1 l2 l3 l5 l6 l7].
    hp.tdma_senders = {1, 2, 4, 5};
    hp.lww_ring = {0, 1, 2, 3, 4, 6, 5};
    hp.owd_pairs = {{0, 3}, {4, 1}, {6, 2}};
  }
  return hp;
}

struct AppRun {
  sim::Simulator sim;
  net::Network net;
  net::PaperTreeTopology tree;
  dtp::DtpNetwork dtp;
  std::unique_ptr<apps::AppHarness> harness;

  explicit AppRun(std::uint64_t seed, bool exclude_crash_victim,
                  unsigned threads = 1)
      : sim(seed), net(sim, app_net_params()), tree(net::build_paper_tree(net)) {
    dtp = dtp::enable_dtp(net, chaos::CanonicalCampaign::dtp_params());
    start_app_load(net, tree);
    std::vector<net::Host*> hosts;
    for (std::size_t i = 0; i < tree.leaves.size(); ++i) {
      if (exclude_crash_victim && i == 4) continue;
      hosts.push_back(tree.leaves[i]);
    }
    harness = std::make_unique<apps::AppHarness>(
        sim, dtp, std::move(hosts), harness_params(exclude_crash_victim));
    harness->start_daemons();
    harness->start_apps(chaos::CanonicalCampaign::settle_time());
    if (threads > 1) sim.set_threads(threads);
  }
};

TEST(TimebaseApps, FaultFreeRunIsCleanUnderLoad) {
  AppRun run(601, /*exclude_crash_victim=*/false);
  check::Sentinel sentinel(run.net, run.dtp);
  for (std::size_t i = 0; i < run.harness->size(); ++i)
    sentinel.watch_timebase(&run.harness->daemon(i));

  run.sim.run_until(12_ms);

  // The sentinel's honesty contract held on every page, and its timebase
  // monitor actually ran.
  EXPECT_GT(sentinel.stats().timebase_checks, 0u);
  EXPECT_TRUE(sentinel.clean()) << [&] {
    std::string out;
    for (const auto& v : sentinel.violations()) out += v.to_string() + "\n";
    return out;
  }();

  // Every workload did real work and had zero correctness failures.
  const apps::OwdPairStats owd = run.harness->owd()->total();
  EXPECT_GT(owd.probes, 100u);
  EXPECT_EQ(owd.failures, 0u) << "fault-free OWD error outside claimed budget";

  const apps::LwwWriterStats lww = run.harness->lww()->total();
  EXPECT_GT(lww.writes, 100u);
  EXPECT_EQ(lww.inversions, 0u) << "fault-free causal order inverted";
  EXPECT_EQ(lww.certain_wrong, 0u);

  const apps::TdmaSenderStats tdma = run.harness->tdma()->total();
  EXPECT_GT(tdma.sends, 500u);
  EXPECT_EQ(tdma.misses, 0u)
      << "fault-free TDMA guard-band miss (worst " << tdma.worst_miss_ns << " ns)";

  EXPECT_GT(run.harness->readers()->total_reads(), 1000u);
}

TEST(TimebaseApps, AppVerdictsBitIdenticalSerialVsParallel) {
  // The whole serving stack — daemon polls, page publishes, reader fleet,
  // and all three app verdicts — must be byte-identical serial vs 2 vs 4
  // worker threads. Every stat is shard-confined and every cross-host signal
  // travels in a frame, so any divergence is a real race.
  struct Fingerprint {
    std::vector<apps::OwdPairStats> owd;
    std::vector<apps::LwwWriterStats> lww;
    std::vector<apps::TdmaSenderStats> tdma;
    std::string fleet_digest;
    std::string sentinel_digest;
    std::uint64_t reads = 0;
    bool operator==(const Fingerprint&) const = default;
  };
  auto fingerprint = [](unsigned threads) {
    AppRun run(602, /*exclude_crash_victim=*/false, threads);
    check::Sentinel sentinel(run.net, run.dtp);
    for (std::size_t i = 0; i < run.harness->size(); ++i)
      sentinel.watch_timebase(&run.harness->daemon(i));
    run.sim.run_until(9_ms);
    Fingerprint fp;
    for (std::size_t i = 0; i < run.harness->owd()->size(); ++i)
      fp.owd.push_back(run.harness->owd()->pair_stats(i));
    for (std::size_t i = 0; i < run.harness->lww()->size(); ++i)
      fp.lww.push_back(run.harness->lww()->writer_stats(i));
    for (std::size_t i = 0; i < run.harness->tdma()->size(); ++i)
      fp.tdma.push_back(run.harness->tdma()->sender_stats(i));
    fp.fleet_digest = run.harness->readers()->digest().hex();
    fp.sentinel_digest = sentinel.digest().hex();
    fp.reads = run.harness->readers()->total_reads();
    return fp;
  };
  const Fingerprint serial = fingerprint(1);
  EXPECT_GT(serial.reads, 0u);
  EXPECT_EQ(serial, fingerprint(2)) << "2-thread app run diverged from serial";
  EXPECT_EQ(serial, fingerprint(4)) << "4-thread app run diverged from serial";
}

TEST(TimebaseApps, CanonicalCampaignAppsDetectInjectedFailures) {
  // The canonical fault schedule plus a PCIe storm against leaf6's daemon
  // overlapping the rogue-oscillator window: while the network counter is
  // dragged ahead by the +500 ppm rogue, the stormed page free-runs on its
  // stale pre-rogue anchor. The apps must (a) count real failures — TDMA
  // frames land outside their guard bands, LWW commits inverted versions —
  // and (b) *notice*: stale-page fires and stale writes are reported, and
  // the page honesty invariant (uncertainty never understated while fresh)
  // stays clean throughout.
  AppRun run(603, /*exclude_crash_victim=*/true);
  check::Sentinel sentinel(run.net, run.dtp);
  for (std::size_t i = 0; i < run.harness->size(); ++i)
    sentinel.watch_timebase(&run.harness->daemon(i));

  chaos::ChaosEngine engine(run.net, run.dtp,
                            chaos::CanonicalCampaign::chaos_params());
  const fs_t t0 = chaos::CanonicalCampaign::settle_time();
  chaos::FaultPlan plan = chaos::CanonicalCampaign::plan(run.tree, t0);
  // leaf6 is harness host index 5 in the campaign host list. The storm ends
  // at t0+21ms; the daemon's recovery probe starts there, so give it an
  // explicit timeout that fits inside the run (its convergence verdict is
  // not under test here — the app-level detection is).
  chaos::FaultSpec storm = chaos::FaultSpec::pcie_storm(
      run.harness->daemon(5), t0 + 13_ms, 8_ms, from_ns(600), 0.3, 2_us, 24.0);
  storm.probe_timeout = 6_ms;
  plan.add(std::move(storm));
  engine.schedule(plan);
  // Every fault window (plus recovery margin) is blacked out for the
  // net-level monitors AND the page-honesty check: a fault can step the
  // hardware counter faster than a 1 ms poll can re-anchor, and the rogue
  // makes the bound unknowable until quarantine completes.
  for (const chaos::FaultSpec& f : plan.faults)
    sentinel.add_blackout(f.at, f.at + f.duration + 3_ms);
  sentinel.add_blackout(t0 + 15_ms, chaos::CanonicalCampaign::end_time(t0));

  run.sim.run_until(chaos::CanonicalCampaign::end_time(t0) + 3_ms);
  ASSERT_TRUE(engine.all_probes_done());

  // App verdicts join the campaign report.
  for (auto& v : run.harness->verdicts()) engine.report().add_app(std::move(v));
  const auto& verdicts = engine.report().app_verdicts();
  ASSERT_EQ(verdicts.size(), 3u);

  const apps::TdmaSenderStats tdma = run.harness->tdma()->total();
  EXPECT_GT(tdma.sends, 1000u);
  EXPECT_GT(tdma.misses, 0u)
      << "the stale stormed page must push TDMA frames out of their slots";
  EXPECT_GT(tdma.stale_fires, 0u) << "the app never saw the stale flag";

  const apps::LwwWriterStats lww = run.harness->lww()->total();
  EXPECT_GT(lww.writes, 100u);
  EXPECT_GT(lww.inversions, 0u)
      << "rogue-vs-stormed clock skew must invert causal order";
  EXPECT_GT(lww.stale_writes, 0u);

  const apps::OwdPairStats owd = run.harness->owd()->total();
  EXPECT_GT(owd.probes, 100u);
  EXPECT_GT(owd.failures + owd.detected, 0u)
      << "OWD measured through the quarantined rogue must leave the budget";

  // Through all of it the *fresh* pages never understated their error.
  EXPECT_GT(sentinel.stats().timebase_checks, 0u);
  std::uint64_t timebase_violations = 0;
  for (const auto& v : sentinel.violations())
    timebase_violations += v.kind == check::InvariantKind::kTimebaseUncertainty;
  EXPECT_EQ(timebase_violations, 0u) << [&] {
    std::string out;
    for (const auto& v : sentinel.violations()) out += v.to_string() + "\n";
    return out;
  }();

  if (HasFailure()) engine.report().print(std::cerr);
}

}  // namespace
}  // namespace dtpsim
