#pragma once

/// Shared fixtures for DTP protocol tests: small networks with explicit
/// oscillator offsets, agents attached, ready to run.

#include <memory>

#include "dtp/agent.hpp"
#include "dtp/network.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace dtpsim::dtp::testutil {

/// Two hosts joined by one cable, DTP on both.
struct TwoNodes {
  sim::Simulator sim;
  net::Network net;
  net::Host* a = nullptr;
  net::Host* b = nullptr;
  std::unique_ptr<Agent> agent_a;
  std::unique_ptr<Agent> agent_b;

  TwoNodes(std::uint64_t seed, double ppm_a, double ppm_b, DtpParams params = {},
           net::NetworkParams net_params = {})
      : sim(seed), net(sim, net_params) {
    a = &net.add_host("a", ppm_a);
    b = &net.add_host("b", ppm_b);
    net.connect(*a, *b);
    agent_a = std::make_unique<Agent>(*a, params);
    agent_b = std::make_unique<Agent>(*b, params);
  }

  PortLogic& port_a() { return agent_a->port_logic(0); }
  PortLogic& port_b() { return agent_b->port_logic(0); }

  /// |gc_a - gc_b| in fractional ticks right now.
  double abs_offset_ticks() const {
    return std::abs(true_offset_fractional(*agent_a, *agent_b, sim.now())) /
           static_cast<double>(agent_a->params().counter_delta);
  }
};

/// Run the simulation in steps of `step`, calling `check` after each step.
template <typename Fn>
void run_sampled(sim::Simulator& sim, fs_t until, fs_t step, Fn&& check) {
  while (sim.now() < until) {
    fs_t next = sim.now() + step;
    if (next > until) next = until;
    sim.run_until(next);
    check(sim.now());
  }
}

}  // namespace dtpsim::dtp::testutil
