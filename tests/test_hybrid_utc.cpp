/// Section 5.2, second variant: DTP + PTP-style hardware-stamped sync gives
/// tighter external synchronization than daemon-level UTC broadcasts.

#include <gtest/gtest.h>

#include "dtp/daemon.hpp"
#include "dtp/external.hpp"
#include "dtp/network.hpp"
#include "net/topology.hpp"

namespace dtpsim::dtp {
namespace {

using namespace dtpsim::literals;

struct HybridFixture {
  sim::Simulator sim;
  net::Network net;
  net::StarTopology star;
  DtpNetwork dtp;

  explicit HybridFixture(std::uint64_t seed)
      : sim(seed), net(sim), star(net::build_star(net, 4)) {
    dtp = enable_dtp(net);
    sim.run_until(2_ms);
  }
};

TEST(HybridUtc, ClientAcquiresFixFromOneSync) {
  HybridFixture f(421);
  HybridUtcServer server(f.sim, *f.star.hosts[0], *f.dtp.agent_of(f.star.hosts[0]),
                         from_ms(100));
  HybridUtcClient client(*f.star.hosts[1], *f.dtp.agent_of(f.star.hosts[1]));
  server.start();
  EXPECT_FALSE(client.ready());
  EXPECT_THROW(client.utc_at(f.sim.now()), std::logic_error);
  f.sim.run_until(f.sim.now() + 300_ms);
  EXPECT_TRUE(client.ready());
  EXPECT_GE(client.syncs_received(), 2u);
}

TEST(HybridUtc, UtcWithinTensOfNanoseconds) {
  HybridFixture f(422);
  HybridUtcServer server(f.sim, *f.star.hosts[0], *f.dtp.agent_of(f.star.hosts[0]),
                         from_ms(100));
  std::vector<std::unique_ptr<HybridUtcClient>> clients;
  for (std::size_t i = 1; i < f.star.hosts.size(); ++i)
    clients.push_back(std::make_unique<HybridUtcClient>(
        *f.star.hosts[i], *f.dtp.agent_of(f.star.hosts[i])));
  server.start();
  f.sim.run_until(f.sim.now() + 2_sec);
  for (auto& c : clients) {
    ASSERT_TRUE(c->ready());
    // Hardware DTP stamping: error = counter disagreement (4TD) + tick
    // phase, with no daemon/PCIe in the loop.
    EXPECT_LT(c->error_series().stats().max_abs(), 60.0);
  }
}

TEST(HybridUtc, BeatsDaemonLevelBroadcast) {
  // The same network, both §5.2 schemes side by side.
  HybridFixture f(423);
  Agent* server_agent = f.dtp.agent_of(f.star.hosts[0]);
  DaemonParams dp;
  dp.poll_period = from_ms(20);
  dp.sample_period = 0;
  Daemon server_daemon(f.sim, *server_agent, dp, 11.0);
  Daemon client_daemon(f.sim, *f.dtp.agent_of(f.star.hosts[1]), dp, -8.0);
  server_daemon.start();
  client_daemon.start();
  f.sim.run_until(f.sim.now() + 300_ms);

  UtcBroadcaster soft_server(f.sim, *f.star.hosts[0], server_daemon, from_ms(100));
  UtcClient soft_client(*f.star.hosts[1], client_daemon);
  HybridUtcServer hw_server(f.sim, *f.star.hosts[2], *f.dtp.agent_of(f.star.hosts[2]),
                            from_ms(100));
  HybridUtcClient hw_client(*f.star.hosts[3], *f.dtp.agent_of(f.star.hosts[3]));
  soft_server.start();
  hw_server.start();
  f.sim.run_until(f.sim.now() + 3_sec);

  ASSERT_TRUE(soft_client.ready());
  ASSERT_TRUE(hw_client.ready());
  const auto tail_max = [](const TimeSeries& ts) {
    const auto& pts = ts.points();
    double worst = 0;
    for (std::size_t i = pts.size() / 2; i < pts.size(); ++i)
      worst = std::max(worst, std::abs(pts[i].value));
    return worst;
  };
  const double soft = tail_max(soft_client.error_series());
  const double hard = tail_max(hw_client.error_series());
  EXPECT_LT(hard, soft) << "hardware stamping must beat the daemon path";
  EXPECT_LT(hard, 60.0);
}

TEST(HybridUtc, ServerUtcErrorIsTheFloor) {
  HybridFixture f(424);
  HybridUtcServer server(f.sim, *f.star.hosts[0], *f.dtp.agent_of(f.star.hosts[0]),
                         from_ms(100), /*utc_error_ns=*/100.0);
  HybridUtcClient client(*f.star.hosts[1], *f.dtp.agent_of(f.star.hosts[1]));
  server.start();
  f.sim.run_until(f.sim.now() + 2_sec);
  ASSERT_TRUE(client.ready());
  StreamingStats tail;
  const auto& pts = client.error_series().points();
  for (std::size_t i = pts.size() / 2; i < pts.size(); ++i) tail.add(pts[i].value);
  EXPECT_GT(tail.stddev(), 10.0) << "the GPS-grade server noise dominates";
  EXPECT_LT(tail.max_abs(), 600.0);
}

TEST(HybridUtc, DeadServerMakesTheEstimateStaleNotFresh) {
  // Regression: utc_at() happily extrapolates on the last fix forever, so a
  // dead server must surface through stale()/age(), not through an estimate
  // that silently keeps looking authoritative.
  HybridFixture f(427);
  HybridUtcServer server(f.sim, *f.star.hosts[0], *f.dtp.agent_of(f.star.hosts[0]),
                         from_ms(100));
  HybridUtcClient client(*f.star.hosts[1], *f.dtp.agent_of(f.star.hosts[1]));
  server.start();
  f.sim.run_until(f.sim.now() + 1_sec);
  ASSERT_TRUE(client.ready());
  EXPECT_FALSE(client.stale(f.sim.now())) << "live broadcasts flagged stale";

  server.stop();
  const fs_t died_at = f.sim.now();
  f.sim.run_until(f.sim.now() + 2_sec);
  EXPECT_NO_THROW(client.utc_at(f.sim.now()));  // still extrapolates...
  EXPECT_TRUE(client.stale(f.sim.now())) << "...but must read as degraded";
  EXPECT_GE(client.age(f.sim.now()), f.sim.now() - died_at - from_ms(100));
}

TEST(HybridUtc, ExplicitStalenessCeilingOverridesTheMeasuredGap) {
  HybridFixture f(428);
  HybridUtcServer server(f.sim, *f.star.hosts[0], *f.dtp.agent_of(f.star.hosts[0]),
                         from_ms(100));
  HybridUtcClient client(*f.star.hosts[1], *f.dtp.agent_of(f.star.hosts[1]));
  server.start();
  f.sim.run_until(f.sim.now() + 1_sec);
  ASSERT_TRUE(client.ready());
  // A 50 ms application ceiling on a 100 ms cadence: every read taken just
  // before the next broadcast is already too old for this consumer.
  client.set_staleness_after(from_ms(50));
  f.sim.run_until(f.sim.now() + from_ms(95));
  EXPECT_TRUE(client.stale(f.sim.now()));
  client.set_staleness_after(0);  // back to 3x the measured gap
  EXPECT_FALSE(client.stale(f.sim.now()));
}

TEST(HybridUtc, SoftwareClientStalenessMatchesHardwareRule) {
  // Same degraded-read contract on the daemon-path UtcClient.
  HybridFixture f(429);
  DaemonParams dp;
  dp.poll_period = from_us(200);
  Daemon server_daemon(f.sim, *f.dtp.agent_of(f.star.hosts[0]), dp, 25.0);
  Daemon client_daemon(f.sim, *f.dtp.agent_of(f.star.hosts[1]), dp, 25.0);
  server_daemon.start();
  client_daemon.start();
  f.sim.run_until(f.sim.now() + 200_ms);
  UtcBroadcaster broadcaster(f.sim, *f.star.hosts[0], server_daemon, from_ms(100));
  UtcClient client(*f.star.hosts[1], client_daemon);
  broadcaster.start();
  f.sim.run_until(f.sim.now() + 1_sec);
  ASSERT_TRUE(client.ready());
  EXPECT_FALSE(client.stale(f.sim.now()));
  broadcaster.stop();
  f.sim.run_until(f.sim.now() + 2_sec);
  EXPECT_TRUE(client.stale(f.sim.now()));
}

}  // namespace
}  // namespace dtpsim::dtp
