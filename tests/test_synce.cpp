/// Section 8 extension — DTP over SyncE-style frequency syntonization.
/// With syntonized frequencies the counters stop drifting between beacons;
/// combined with a deterministic CDC the residual offset approaches the
/// sub-nanosecond regime the paper projects.

#include <gtest/gtest.h>

#include "dtp_test_util.hpp"
#include "net/topology.hpp"
#include "phy/syntonize.hpp"

namespace dtpsim::dtp {
namespace {

using namespace dtpsim::literals;

TEST(SyncE, SlaveLocksToUpstreamFrequency) {
  sim::Simulator sim(431);
  phy::Oscillator master(6'400'000, -80.0);
  phy::Oscillator slave(6'400'000, +90.0);
  phy::SyntonizeParams sp;
  sp.residual_ppb = 5.0;
  phy::Syntonizer pll(sim, slave, master, sp, sim.fork_rng(1));
  pll.start();
  sim.run_until(10_ms);
  EXPECT_NEAR(slave.ppm(), master.ppm(), 0.2)
      << "slave frequency pulled from +90 ppm to the master's -80 ppm";
}

TEST(SyncE, ChainAccumulatesOnlyResiduals) {
  sim::Simulator sim(432);
  phy::Oscillator a(6'400'000, -100.0);
  phy::Oscillator b(6'400'000, 0.0);
  phy::Oscillator c(6'400'000, +100.0);
  phy::SyntonizeParams sp;
  sp.residual_ppb = 10.0;
  phy::Syntonizer p1(sim, b, a, sp, sim.fork_rng(1));
  phy::Syntonizer p2(sim, c, b, sp, sim.fork_rng(2));
  p1.start();
  p2.start();
  sim.run_until(10_ms);
  EXPECT_NEAR(c.ppm(), a.ppm(), 0.3) << "two PLL hops: tens of ppb residual, not ppm";
}

TEST(SyncE, SyntonizedTreeHelper) {
  sim::Simulator sim(433);
  net::Network net(sim);
  auto tree = net::build_paper_tree(net);
  auto plls = net::syntonize_tree(net, *tree.root);
  EXPECT_EQ(plls.size(), net.devices().size() - 1) << "one PLL per non-root device";
  sim.run_until(5_ms);
  for (net::Device* d : net.devices())
    EXPECT_NEAR(d->oscillator().ppm(), tree.root->oscillator().ppm(), 0.3) << d->name();
}

TEST(SyncE, DtpOverSynceTightensOffsets) {
  // Plain DTP vs DTP-over-SyncE on the same pair: syntonization kills the
  // inter-beacon drift, shrinking the worst offset.
  auto run = [](bool synce) {
    sim::Simulator sim(434);
    net::NetworkParams np;
    np.fifo.metastability_window = 0.0;  // deterministic CDC (the §8 pairing)
    net::Network net(sim, np);
    auto& a = net.add_host("a", 100.0);
    auto& b = net.add_host("b", -100.0);
    net.connect(a, b);
    std::vector<std::unique_ptr<phy::Syntonizer>> plls;
    if (synce) plls = net::syntonize_tree(net, a);
    Agent agent_a(a), agent_b(b);
    sim.run_until(2_ms);
    double worst = 0;
    const fs_t end = sim.now() + 100_ms;
    while (sim.now() < end) {
      sim.run_until(sim.now() + 50_us);
      worst = std::max(worst,
                       std::abs(true_offset_fractional(agent_a, agent_b, sim.now())));
    }
    return worst;
  };
  const double plain = run(false);
  const double synced = run(true);
  EXPECT_LT(synced, plain) << "syntonization must help";
  EXPECT_LT(synced, 2.5) << "DTP+SyncE+deterministic CDC: a couple ticks at most";
}

TEST(SyncE, ResidualVisibleInAccessor) {
  sim::Simulator sim(435);
  phy::Oscillator master(6'400'000, 0.0);
  phy::Oscillator slave(6'400'000, 50.0);
  phy::SyntonizeParams sp;
  sp.residual_ppb = 20.0;
  phy::Syntonizer pll(sim, slave, master, sp, sim.fork_rng(3));
  pll.start();
  sim.run_until(1_ms);
  EXPECT_NE(pll.last_residual_ppb(), 0.0);
  EXPECT_LT(std::abs(pll.last_residual_ppb()), 200.0);
}

}  // namespace
}  // namespace dtpsim::dtp
