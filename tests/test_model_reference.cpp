/// Model-reference property tests: the custom arithmetic types are checked
/// against wide-integer reference models under long random operation
/// sequences.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/wide_counter.hpp"
#include "dtp/counter.hpp"
#include "phy/oscillator.hpp"

namespace dtpsim {
namespace {

class WideCounterModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WideCounterModel, MatchesInt128Reference) {
  Rng rng(GetParam());
  WideCounter c;
  unsigned __int128 model = 0;
  constexpr unsigned __int128 kMod = (static_cast<unsigned __int128>(1) << 106);
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t delta = rng() >> (rng.uniform(40) + 8);
    c.advance(delta);
    model = (model + delta) % kMod;
    ASSERT_EQ(c.value(), model);
    ASSERT_EQ(c.lsb53(), static_cast<std::uint64_t>(model) & kDtpPayloadMask);
    ASSERT_EQ(c.msb53(), static_cast<std::uint64_t>(model >> 53) & kDtpPayloadMask);
  }
}

TEST_P(WideCounterModel, DiffMatchesSignedReference) {
  Rng rng(GetParam() + 100);
  for (int i = 0; i < 5'000; ++i) {
    const std::uint64_t base = rng() >> 12;
    const std::int64_t delta = rng.uniform_range(-1'000'000, 1'000'000);
    const WideCounter a(base);
    WideCounter b(base);
    if (delta >= 0)
      b.advance(static_cast<std::uint64_t>(delta));
    else
      b = WideCounter(base - static_cast<std::uint64_t>(-delta));
    ASSERT_EQ(static_cast<long long>(b.diff(a)), delta);
    ASSERT_EQ(static_cast<long long>(a.diff(b)), -delta);
    // Reconstruction from the 53-bit ring must agree.
    ASSERT_EQ(a.reconstruct_from_lsb(b.lsb53()), b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WideCounterModel, ::testing::Values(1, 2, 3));

TEST(TickCounterModel, RandomOpsAgainstReference) {
  Rng rng(7);
  dtp::TickCounter c(1, 0);
  // Reference: value as u128, plus an optional cap.
  unsigned __int128 ref_base = 0;
  std::int64_t ref_tick = 0;
  bool capped = false;
  unsigned __int128 cap = 0;
  std::int64_t k = 0;
  auto ref_at = [&](std::int64_t tick) {
    unsigned __int128 v = ref_base + static_cast<std::uint64_t>(tick - ref_tick);
    if (capped && v > cap) v = cap;
    return v;
  };
  for (int i = 0; i < 20'000; ++i) {
    k += static_cast<std::int64_t>(rng.uniform(1000));
    switch (rng.uniform(4)) {
      case 0: {  // fast_forward to a nearby value
        const unsigned __int128 target = ref_at(k) + rng.uniform(5) - 2;
        c.fast_forward(k, WideCounter(static_cast<std::uint64_t>(target)));
        const unsigned __int128 cur = ref_at(k);
        ref_base = cur > target ? cur : target;
        ref_tick = k;
        break;
      }
      case 1: {  // set a cap slightly ahead
        const unsigned __int128 new_cap = ref_at(k) + rng.uniform(2000);
        c.set_cap(WideCounter(static_cast<std::uint64_t>(new_cap)));
        capped = true;
        cap = new_cap;
        break;
      }
      case 2:  // clear cap
        c.clear_cap();
        capped = false;
        break;
      default:
        break;  // plain advance via k
    }
    ASSERT_EQ(static_cast<std::uint64_t>(c.at_tick(k).value()),
              static_cast<std::uint64_t>(ref_at(k)))
        << "op " << i;
  }
}

TEST(OscillatorModel, EdgesAreExactMultiples) {
  // Property: edge_of_tick(k) - edge_of_tick(0) == k * period, and tick_at
  // inverts edge_of_tick, across random period changes.
  Rng rng(8);
  phy::Oscillator osc(6'400'000, 0.0);
  fs_t t = 0;
  for (int i = 0; i < 2'000; ++i) {
    t += static_cast<fs_t>(rng.uniform(50'000'000));
    const std::int64_t k = osc.tick_at(t);
    const fs_t edge = osc.edge_of_tick(k);
    ASSERT_LE(edge, t);
    ASSERT_GT(edge + osc.period(), t);
    ASSERT_EQ(osc.tick_at(edge), k) << "tick_at must invert edge_of_tick";
    ASSERT_EQ(osc.next_edge_at_or_after(edge), edge);
    if (i % 50 == 0) osc.set_ppm_at(t, rng.uniform_real(-100.0, 100.0));
  }
}

TEST(OscillatorModel, TickCountMatchesElapsedOverConstantPeriod) {
  phy::Oscillator osc(6'400'000, 0.0);
  using namespace dtpsim::literals;
  // Exactly 156,250,000 ticks per simulated second at nominal rate.
  EXPECT_EQ(osc.tick_at(1_sec), 156'250'000);
  EXPECT_EQ(osc.tick_at(2_sec) - osc.tick_at(1_sec), 156'250'000);
}

}  // namespace
}  // namespace dtpsim
