#include "dtp/messages.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace dtpsim::dtp {
namespace {

TEST(DtpMessages, EncodeDecodeAllTypes) {
  for (auto type : {MessageType::kInit, MessageType::kInitAck, MessageType::kBeacon,
                    MessageType::kBeaconJoin, MessageType::kBeaconMsb, MessageType::kLog}) {
    const Message m{type, 0x000F'1234'5678'9ABCULL & kDtpPayloadMask};
    const auto decoded = decode_bits(encode_bits(m));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, m);
  }
}

TEST(DtpMessages, ZeroBitsIsPlainIdle) {
  EXPECT_FALSE(decode_bits(0).has_value());
}

TEST(DtpMessages, KNoneCannotBeEncoded) {
  EXPECT_THROW(encode_bits({MessageType::kNone, 0}), std::invalid_argument);
}

TEST(DtpMessages, UnknownTypeBitsRejected) {
  EXPECT_FALSE(decode_bits(0x7).has_value());  // type 7 unused
}

TEST(DtpMessages, PayloadMaskedTo53Bits) {
  const Message m{MessageType::kBeacon, ~0ULL};
  const auto decoded = decode_bits(encode_bits(m));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->payload, kDtpPayloadMask);
}

TEST(DtpMessages, EncodingFitsIn56Bits) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const Message m{MessageType::kBeacon, rng() & kDtpPayloadMask};
    EXPECT_EQ(encode_bits(m) >> 56, 0u);
  }
}

TEST(DtpMessages, RandomRoundTripProperty) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const auto type = static_cast<MessageType>(1 + rng.uniform(6));
    const Message m{type, rng() & kDtpPayloadMask};
    const auto decoded = decode_bits(encode_bits(m));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(*decoded, m);
  }
}

TEST(DtpMessages, ParityRoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const Message m{MessageType::kBeacon, rng() & ((1ULL << kParityPayloadBits) - 1)};
    const auto decoded = decode_bits(encode_bits(m, true), true);
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->payload, m.payload);
  }
}

TEST(DtpMessages, ParityDetectsLsbFlip) {
  const Message m{MessageType::kBeacon, 0x1234};
  std::uint64_t bits = encode_bits(m, true);
  // Flip one of the three LSBs of the payload (bit 3 of the field).
  bits ^= 1ULL << 3;
  EXPECT_FALSE(decode_bits(bits, true).has_value());
}

TEST(DtpMessages, ParityBitItselfProtected) {
  const Message m{MessageType::kBeacon, 0x1234};
  std::uint64_t bits = encode_bits(m, true);
  bits ^= 1ULL << (3 + kParityPayloadBits);  // flip the parity bit
  EXPECT_FALSE(decode_bits(bits, true).has_value());
}

TEST(DtpMessages, ParityMissesNonLsbFlips) {
  // Documented limitation: parity covers only the 3 LSBs; flips elsewhere
  // pass parity and must be caught by the +-8 range filter.
  const Message m{MessageType::kBeacon, 0x1234};
  std::uint64_t bits = encode_bits(m, true);
  bits ^= 1ULL << 20;
  const auto decoded = decode_bits(bits, true);
  ASSERT_TRUE(decoded);
  EXPECT_NE(decoded->payload, m.payload);
}

TEST(DtpMessages, BlockEmbeddingRoundTrip) {
  const Message m{MessageType::kInit, 42};
  const phy::Block b = encode_into_block(m);
  EXPECT_TRUE(b.is_idle_frame());
  const auto decoded = decode_from_block(b);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, m);
}

TEST(DtpMessages, DecodeFromNonIdleBlockIsNull) {
  std::uint8_t bytes[8] = {};
  EXPECT_FALSE(decode_from_block(phy::make_data_block(bytes)).has_value());
}

TEST(DtpMessages, StripRestoresPlainIdles) {
  // Section 4.2: the RX DTP sublayer replaces the message with idle
  // characters so higher layers never see DTP.
  const phy::Block stripped = strip_to_idle(encode_into_block({MessageType::kBeacon, 99}));
  EXPECT_EQ(stripped, phy::make_idle_block());
  EXPECT_EQ(stripped.idle_field(), 0u);
}

TEST(DtpMessages, StripLeavesDataBlocksAlone) {
  std::uint8_t bytes[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  const phy::Block data = phy::make_data_block(bytes);
  EXPECT_EQ(strip_to_idle(data), data);
}

TEST(DtpMessages, TypeNames) {
  EXPECT_STREQ(to_string(MessageType::kBeacon), "BEACON");
  EXPECT_STREQ(to_string(MessageType::kBeaconJoin), "BEACON-JOIN");
  const Message init{MessageType::kInit, 5};
  EXPECT_EQ(init.to_string(), "INIT(5)");
}

}  // namespace
}  // namespace dtpsim::dtp
