#include <gtest/gtest.h>

#include <cmath>

#include "chaos/engine.hpp"
#include "chaos/campaign.hpp"
#include "dtp/daemon.hpp"
#include "dtp_test_util.hpp"

/// Recovery-hardening tests: the quarantine re-enable paths (clear_fault,
/// cooldown-gated link bounce), the Section 3.2 counter reset on
/// all-ports-down, node crash/restart against live peers, and the chaos
/// engine's fault primitives and probes.

namespace dtpsim {
namespace {

using namespace dtpsim::literals;
using dtp::testutil::TwoNodes;

/// Drive b's jump detector into kFaulty by periodically bumping a's counter.
/// Returns promptly after the trip so the caller sits inside fault_cooldown.
void trip_detector(TwoNodes& n, sim::PeriodicProcess& fault) {
  fault.start();
  const fs_t deadline = n.sim.now() + 20_ms;
  while (n.sim.now() < deadline &&
         n.port_b().state() != dtp::PortState::kFaulty)
    n.sim.run_until(n.sim.now() + 100_us);
  fault.stop();
  ASSERT_EQ(n.port_b().state(), dtp::PortState::kFaulty);
}

dtp::DtpParams detector_params() {
  dtp::DtpParams p;
  p.enable_jump_detector = true;
  p.jump_threshold_ticks = 4;
  p.max_jumps = 8;
  p.jump_window = 10_ms;
  p.fault_cooldown = 2_ms;
  return p;
}

TEST(ChaosRecovery, ClearFaultReInitsAndResyncs) {
  TwoNodes n(51, 0.0, 0.0, detector_params());
  n.sim.run_until(2_ms);
  ASSERT_EQ(n.port_b().state(), dtp::PortState::kSynced);

  sim::PeriodicProcess fault(n.sim, 100_us, [&] {
    n.agent_a->force_global(n.sim.now(), n.agent_a->global_at(n.sim.now()).plus(6));
  });
  trip_detector(n, fault);

  // Operator override: the port re-runs INIT and (via the peer's join reply
  // to a fresh INIT) re-adopts the network counter.
  n.port_b().clear_fault();
  EXPECT_FALSE(n.port_b().jump_detector().tripped());
  n.sim.run_until(n.sim.now() + 1_ms);
  EXPECT_EQ(n.port_b().state(), dtp::PortState::kSynced);
  EXPECT_LE(n.abs_offset_ticks(), 4.0);
}

TEST(ChaosRecovery, ClearFaultIsNoOpOnHealthyPort) {
  TwoNodes n(52, 50.0, -50.0, detector_params());
  n.sim.run_until(2_ms);
  ASSERT_EQ(n.port_b().state(), dtp::PortState::kSynced);
  n.port_b().clear_fault();
  EXPECT_EQ(n.port_b().state(), dtp::PortState::kSynced);
}

TEST(ChaosRecovery, LinkBounceInsideCooldownStaysQuarantined) {
  TwoNodes n(53, 0.0, 0.0, detector_params());
  n.sim.run_until(2_ms);
  sim::PeriodicProcess fault(n.sim, 100_us, [&] {
    n.agent_a->force_global(n.sim.now(), n.agent_a->global_at(n.sim.now()).plus(6));
  });
  trip_detector(n, fault);

  // Bounce the cable immediately: inside fault_cooldown (2 ms) the
  // quarantine must survive the replug.
  phy::Cable* cable = n.net.cables().front().get();
  cable->disconnect();
  n.sim.run_until(n.sim.now() + 50_us);
  cable = &n.net.connect_ports(n.a->nic_port(), n.b->nic_port());
  n.sim.run_until(n.sim.now() + 200_us);
  EXPECT_EQ(n.port_b().state(), dtp::PortState::kFaulty)
      << "a flapping cable must not launder a faulty peer back in";

  // Bounce again after the cooldown: the detector resets, INIT re-runs.
  n.sim.run_until(n.sim.now() + 3_ms);
  cable->disconnect();
  n.sim.run_until(n.sim.now() + 50_us);
  n.net.connect_ports(n.a->nic_port(), n.b->nic_port());
  n.sim.run_until(n.sim.now() + 1_ms);
  EXPECT_EQ(n.port_b().state(), dtp::PortState::kSynced);
  EXPECT_LE(n.abs_offset_ticks(), 4.0);
}

/// A three-device chain so the middle keeps its counter when an edge link
/// flaps (the network's memory the rejoiner must re-acquire).
struct Chain {
  sim::Simulator sim;
  net::Network net;
  net::Host* a;
  net::Switch* s;
  net::Host* b;
  dtp::DtpNetwork dtp;

  explicit Chain(std::uint64_t seed, dtp::DtpParams params)
      : sim(seed), net(sim) {
    a = &net.add_host("a", 80.0);
    s = &net.add_switch("s", -20.0);
    b = &net.add_host("b", -90.0);
    net.connect(*a, *s);
    net.connect(*s, *b);
    dtp = dtp::enable_dtp(net, params);
  }

  double offset_ticks(net::Device& x, net::Device& y) {
    return std::abs(dtp::true_offset_fractional(*dtp.agent_of(&x), *dtp.agent_of(&y),
                                                sim.now())) /
           static_cast<double>(dtp.agent(0).params().counter_delta);
  }
};

TEST(ChaosRecovery, AllPortsDownResetsCounterAndRejoinsWithinTwoBeacons) {
  // Section 3.2: a node whose every port goes inactive zeroes its counter;
  // on reconnection it re-acquires the network counter via BEACON-JOIN.
  const dtp::DtpParams params = chaos::CanonicalCampaign::dtp_params();
  Chain c(54, params);
  c.sim.run_until(2_ms);  // ~312k counter units accrued network-wide
  ASSERT_TRUE(c.dtp.all_synced());
  const auto resets_before = c.dtp.agent_of(c.a)->counter_resets();

  phy::Cable* cable = c.net.cables().front().get();  // the a--s link
  cable->disconnect();
  c.sim.run_until(c.sim.now() + 50_us);
  EXPECT_EQ(c.dtp.agent_of(c.a)->counter_resets(), resets_before + 1);
  // ~2 ms of runtime had accrued ~312k units; after the reset the counter
  // restarts from zero, so 50 us dark leaves it under ~8k units.
  EXPECT_LT(static_cast<double>(c.dtp.agent_of(c.a)->global_at(c.sim.now()).value()),
            20'000.0)
      << "the counter must restart near zero while dark";

  c.net.connect_ports(cable->port_a(), cable->port_b());
  const fs_t re_up = c.sim.now();
  const fs_t two_beacons = 2 * params.beacon_interval_ticks *
                           nominal_period(phy::LinkRate::k10G);
  c.sim.run_until(re_up + two_beacons);
  EXPECT_LE(c.offset_ticks(*c.a, *c.s), 4.0)
      << "rejoin must complete within two beacon intervals";
}

TEST(ChaosRecovery, CrashRestartRejoinsAgainstLivePeers) {
  const dtp::DtpParams params = chaos::CanonicalCampaign::dtp_params();
  Chain c(55, params);
  c.sim.run_until(2_ms);
  ASSERT_TRUE(c.dtp.all_synced());

  chaos::ChaosParams cp = chaos::CanonicalCampaign::chaos_params();
  chaos::ChaosEngine engine(c.net, c.dtp, cp);

  engine.crash_node(*c.a);
  EXPECT_EQ(c.dtp.agent_of(c.a), nullptr);
  // Peers keep running against the dead node: beacons go unanswered, s's
  // port toward a is down, s--b stays synced.
  c.sim.run_until(c.sim.now() + 200_us);
  EXPECT_LE(c.offset_ticks(*c.s, *c.b), 4.0);

  engine.restart_node(*c.a);
  dtp::Agent* fresh = c.dtp.agent_of(c.a);
  ASSERT_NE(fresh, nullptr);
  const fs_t two_beacons = 2 * params.beacon_interval_ticks *
                           nominal_period(phy::LinkRate::k10G);
  c.sim.run_until(c.sim.now() + two_beacons);
  EXPECT_LE(c.offset_ticks(*c.a, *c.s), 4.0);
  EXPECT_LE(c.offset_ticks(*c.a, *c.b), 4.0);
}

TEST(ChaosEngine, LinkFlapProbeMeasuresReconvergence) {
  const dtp::DtpParams params = chaos::CanonicalCampaign::dtp_params();
  Chain c(56, params);
  chaos::ChaosEngine engine(c.net, c.dtp, chaos::CanonicalCampaign::chaos_params());

  chaos::FaultPlan plan;
  plan.add(chaos::FaultSpec::link_flap(*c.a, *c.s, 2_ms, 50_us));
  engine.schedule(plan);
  c.sim.run_until(4_ms);

  ASSERT_TRUE(engine.all_probes_done());
  const auto summary = engine.report().summary("link_flap");
  EXPECT_EQ(summary.n, 1);
  EXPECT_EQ(summary.converged, 1);
  EXPECT_LE(summary.p99_bi, 2.0);
  EXPECT_TRUE(summary.stall_ok);
}

TEST(ChaosEngine, UnknownLinkInPlanThrows) {
  Chain c(57, chaos::CanonicalCampaign::dtp_params());
  chaos::ChaosEngine engine(c.net, c.dtp, chaos::CanonicalCampaign::chaos_params());
  chaos::FaultPlan plan;
  plan.add(chaos::FaultSpec::link_flap(*c.a, *c.b, 1_ms, 50_us));  // not cabled
  EXPECT_THROW(engine.schedule(plan), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Gray-failure named constructors (DESIGN.md §15): every malformed spec must
// fail loudly at construction or scheduling time — a gray fault that half
// injects IS the gray failure mode the tier exists to kill.

TEST(ChaosGray, NamedConstructorsRejectMalformedSpecs) {
  Chain c(59, chaos::CanonicalCampaign::dtp_params());

  // Zero / negative windows.
  EXPECT_THROW(chaos::FaultSpec::asymmetric_delay(*c.a, *c.s, 1_ms, 0, from_ns(50)),
               std::invalid_argument);
  EXPECT_THROW(chaos::FaultSpec::limping_port(*c.a, *c.s, 1_ms, -1_ms, 0.3, from_ns(80)),
               std::invalid_argument);
  EXPECT_THROW(chaos::FaultSpec::silent_corruption(*c.a, *c.s, 1_ms, 0, 0.5),
               std::invalid_argument);
  EXPECT_THROW(chaos::FaultSpec::frozen_counter(*c.a, *c.s, 1_ms, -1),
               std::invalid_argument);

  // Degenerate magnitudes.
  EXPECT_THROW(chaos::FaultSpec::asymmetric_delay(*c.a, *c.s, 1_ms, 1_ms, 0),
               std::invalid_argument);
  EXPECT_THROW(chaos::FaultSpec::asymmetric_delay(*c.a, *c.s, 1_ms, 1_ms, -from_ns(50)),
               std::invalid_argument);
  EXPECT_THROW(chaos::FaultSpec::limping_port(*c.a, *c.s, 1_ms, 1_ms, 1.5, from_ns(80)),
               std::invalid_argument);
  EXPECT_THROW(chaos::FaultSpec::limping_port(*c.a, *c.s, 1_ms, 1_ms, 0.3, 0),
               std::invalid_argument);
  EXPECT_THROW(chaos::FaultSpec::silent_corruption(*c.a, *c.s, 1_ms, 1_ms, -0.1),
               std::invalid_argument);
}

TEST(ChaosGray, ScheduleRejectsUncabledGrayFaults) {
  Chain c(60, chaos::CanonicalCampaign::dtp_params());
  chaos::ChaosEngine engine(c.net, c.dtp, chaos::CanonicalCampaign::chaos_params());
  // a and b are two hops apart — no direct cable, so the direction the spec
  // names does not exist.
  chaos::FaultPlan plan;
  plan.add(chaos::FaultSpec::frozen_counter(*c.a, *c.b, 1_ms, 1_ms));
  EXPECT_THROW(engine.schedule(plan), std::invalid_argument);
}

TEST(ChaosGray, SourceFaultWithoutHierarchyThrows) {
  Chain c(61, chaos::CanonicalCampaign::dtp_params());
  chaos::ChaosEngine engine(c.net, c.dtp, chaos::CanonicalCampaign::chaos_params());
  // No set_hierarchy(): scheduling a source-kind fault must fail loudly, not
  // silently skip the injection.
  chaos::FaultPlan plan;
  plan.add(chaos::FaultSpec::gps_loss(*c.a, 1_ms, 1_ms));
  EXPECT_THROW(engine.schedule(plan), std::invalid_argument);
}

TEST(ChaosEngine, PcieStormRejectedThenRecovered) {
  sim::Simulator sim(58);
  net::Network net(sim);
  net::Host& a = net.add_host("a", 40.0);
  net::Host& b = net.add_host("b", -40.0);
  net.connect(a, b);
  dtp::DtpNetwork dtpn = dtp::enable_dtp(net, {});

  dtp::DaemonParams dp;
  dp.poll_period = 50_us;
  dp.sample_period = 0;
  dtp::Daemon daemon(sim, *dtpn.agent_of(&a), dp, 25.0);
  daemon.start();
  sim.run_until(2_ms);
  ASSERT_TRUE(daemon.calibrated());
  // A handful of benign rejections can occur while best-RTT settles.
  const auto rejected_baseline = daemon.rejected_polls();

  chaos::ChaosEngine engine(net, dtpn, {});
  chaos::FaultPlan plan;
  plan.add(chaos::FaultSpec::pcie_storm(daemon, 3_ms, 2_ms, from_ns(400), 0.3,
                                        2_us, 24.0));
  engine.schedule(plan);
  sim.run_until(5_ms);
  EXPECT_GT(daemon.rejected_polls(), rejected_baseline + 10)
      << "the RTT quality filter must discard storm-inflated reads";
  EXPECT_FALSE(daemon.pcie_stressed());

  sim.run_until(10_ms);
  ASSERT_TRUE(engine.all_probes_done());
  const auto summary = engine.report().summary("pcie_storm");
  EXPECT_EQ(summary.n, 1);
  EXPECT_EQ(summary.converged, 1)
      << "the software clock must re-anchor once the storm clears";
}

}  // namespace
}  // namespace dtpsim
