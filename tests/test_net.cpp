#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace dtpsim::net {
namespace {

using namespace dtpsim::literals;

struct PairFixture : ::testing::Test {
  sim::Simulator sim{51};
  Network net{sim};
  Host* a = nullptr;
  Host* b = nullptr;

  void SetUp() override {
    a = &net.add_host("a");
    b = &net.add_host("b");
    net.connect(*a, *b);
  }

  Frame frame_to_b(std::uint32_t payload = 46) {
    Frame f;
    f.dst = b->addr();
    f.src = a->addr();
    f.payload_bytes = payload;
    return f;
  }
};

TEST_F(PairFixture, HardwarePathDelivers) {
  int got = 0;
  b->on_hw_receive = [&](const Frame&, fs_t) { ++got; };
  a->send_hw(frame_to_b());
  sim.run_until(1_ms);
  EXPECT_EQ(got, 1);
  EXPECT_EQ(a->nic().stats().tx_frames, 1u);
  EXPECT_EQ(b->nic().stats().rx_frames, 1u);
}

TEST_F(PairFixture, AppPathAddsStackDelay) {
  fs_t hw_time = 0, app_time = 0;
  b->on_app_receive = [&](const Frame&, fs_t hw, fs_t app) {
    hw_time = hw;
    app_time = app;
  };
  a->send_app(frame_to_b());
  sim.run_until(10_ms);
  ASSERT_GT(hw_time, 0);
  EXPECT_GT(app_time, hw_time) << "software delivery strictly after the wire";
  EXPECT_GE(app_time - hw_time, from_us(2)) << "at least the base RX stack cost";
}

TEST_F(PairFixture, AppSendAlsoDelayed) {
  fs_t hw_rx = 0;
  b->on_hw_receive = [&](const Frame&, fs_t t) { hw_rx = t; };
  a->send_app(frame_to_b());
  sim.run_until(10_ms);
  // TX stack base is 2 us; wire+serialization alone would be < 2 us.
  EXPECT_GE(hw_rx, from_us(2));
}

TEST_F(PairFixture, UnicastToOtherAddressIgnored) {
  int got = 0;
  b->on_hw_receive = [&](const Frame&, fs_t) { ++got; };
  Frame f = frame_to_b();
  f.dst = MacAddr{0xDEADBEEF};
  a->send_hw(f);
  sim.run_until(1_ms);
  EXPECT_EQ(got, 0);
}

TEST_F(PairFixture, BroadcastAccepted) {
  int got = 0;
  b->on_hw_receive = [&](const Frame&, fs_t) { ++got; };
  Frame f = frame_to_b();
  f.dst = MacAddr::broadcast();
  a->send_hw(f);
  sim.run_until(1_ms);
  EXPECT_EQ(got, 1);
}

TEST_F(PairFixture, MacQueueDropsWhenFull) {
  // Tiny queue: only a few frames fit.
  sim::Simulator s2(52);
  NetworkParams np;
  np.mac.queue_capacity_bytes = 3000;
  Network n2(s2, np);
  Host& h1 = n2.add_host("h1");
  Host& h2 = n2.add_host("h2");
  n2.connect(h1, h2);
  Frame f;
  f.dst = h2.addr();
  f.payload_bytes = 1500;
  int accepted = 0;
  for (int i = 0; i < 10; ++i) accepted += h1.nic().enqueue(f);
  EXPECT_LT(accepted, 10);
  EXPECT_GT(h1.nic().stats().tx_drops, 0u);
  s2.run();
  EXPECT_EQ(h2.nic().stats().rx_frames, static_cast<std::uint64_t>(accepted));
}

TEST_F(PairFixture, TransmitHookSeesWireTime) {
  fs_t tx_start = -1;
  a->nic().on_transmit = [&](Frame&, fs_t t) { tx_start = t; };
  a->send_hw(frame_to_b());
  sim.run_until(1_ms);
  EXPECT_GE(tx_start, 0);
}

TEST(SwitchTest, ForwardsByLearnedRoute) {
  sim::Simulator sim(53);
  Network net(sim);
  auto star = build_star(net, 3);
  int got_1 = 0, got_2 = 0;
  star.hosts[1]->on_hw_receive = [&](const Frame&, fs_t) { ++got_1; };
  star.hosts[2]->on_hw_receive = [&](const Frame&, fs_t) { ++got_2; };

  // First frame from h1 teaches the switch where h1 lives.
  Frame teach;
  teach.dst = star.hosts[0]->addr();
  star.hosts[1]->send_hw(teach);
  sim.run_until(1_ms);

  // Now h0 -> h1 must be forwarded only to h1.
  Frame f;
  f.dst = star.hosts[1]->addr();
  star.hosts[0]->send_hw(f);
  sim.run_until(2_ms);
  EXPECT_EQ(got_1, 1);
  EXPECT_EQ(got_2, 0);
  EXPECT_GE(star.hub->stats().forwarded, 1u);
}

TEST(SwitchTest, UnknownUnicastFloods) {
  sim::Simulator sim(54);
  Network net(sim);
  auto star = build_star(net, 3);
  int got = 0;
  for (auto* h : star.hosts)
    h->on_hw_receive = [&](const Frame&, fs_t) { ++got; };
  Frame f;
  f.dst = star.hosts[2]->addr();  // never seen as src yet
  star.hosts[0]->send_hw(f);
  sim.run_until(1_ms);
  // Flooded to h1 and h2; only h2's address matches, so got == 1, but the
  // switch counted a flood.
  EXPECT_EQ(got, 1);
  EXPECT_GE(star.hub->stats().flooded, 1u);
}

TEST(SwitchTest, DropOnMissWhenFloodDisabled) {
  sim::Simulator sim(55);
  NetworkParams np;
  np.switch_params.flood_on_miss = false;
  Network net(sim, np);
  auto star = build_star(net, 2);
  Frame f;
  f.dst = MacAddr{0x999999};
  star.hosts[0]->send_hw(f);
  sim.run_until(1_ms);
  EXPECT_EQ(star.hub->stats().dropped_no_route, 1u);
}

TEST(SwitchTest, MulticastFloodsToAll) {
  sim::Simulator sim(56);
  Network net(sim);
  auto star = build_star(net, 4);
  int got = 0;
  for (auto* h : star.hosts)
    h->on_hw_receive = [&](const Frame&, fs_t) { ++got; };
  Frame f;
  f.dst = MacAddr{0x0180'C200'000EULL};
  star.hosts[0]->send_hw(f);
  sim.run_until(1_ms);
  EXPECT_EQ(got, 3) << "everyone except the sender";
}

TEST(SwitchTest, StaticRoutesRespected) {
  sim::Simulator sim(57);
  Network net(sim);
  auto& sw = net.add_switch("sw");
  auto& h0 = net.add_host("h0");
  auto& h1 = net.add_host("h1");
  net.connect(sw, h0);  // port 0
  net.connect(sw, h1);  // port 1
  sw.add_route(h1.addr(), 1);
  EXPECT_EQ(sw.route(h1.addr()), 1u);
  EXPECT_EQ(sw.route(MacAddr{12345}), Switch::kNoRoute);
}

TEST(SwitchTest, QueueingDelayUnderContention) {
  // Two hosts blast a third: its downlink is the bottleneck and the switch
  // egress queue must absorb (and delay) traffic — the mechanism that
  // degrades PTP in Fig. 6e/f.
  sim::Simulator sim(58);
  Network net(sim);
  auto star = build_star(net, 3);
  TrafficParams tp;
  tp.saturate = true;
  tp.frame_bytes = kMtuFrameBytes;
  net.add_traffic(*star.hosts[0], star.hosts[2]->addr(), tp).start();
  net.add_traffic(*star.hosts[1], star.hosts[2]->addr(), tp).start();
  sim.run_until(20_ms);
  const auto& egress = star.hub->mac(2);  // toward host 2
  EXPECT_GT(egress.stats().max_queue_bytes, 10'000u) << "backlog must have built";
}

TEST(TrafficTest, RateIsApproximatelyRespected) {
  sim::Simulator sim(59);
  Network net(sim);
  auto& h1 = net.add_host("h1");
  auto& h2 = net.add_host("h2");
  net.connect(h1, h2);
  TrafficParams tp;
  tp.rate_bps = 1e9;  // 1 Gbps on a 10 G link: no loss expected
  tp.frame_bytes = kMtuFrameBytes;
  net.add_traffic(h1, h2.addr(), tp).start();
  sim.run_until(50_ms);
  const double bits = static_cast<double>(h2.nic().stats().rx_bytes) * 8;
  const double rate = bits / 0.05;
  EXPECT_NEAR(rate, 1e9, 1e8);
}

TEST(TrafficTest, SaturationFillsTheLink) {
  sim::Simulator sim(60);
  Network net(sim);
  auto& h1 = net.add_host("h1");
  auto& h2 = net.add_host("h2");
  net.connect(h1, h2);
  TrafficParams tp;
  tp.saturate = true;
  tp.frame_bytes = kMtuFrameBytes;
  net.add_traffic(h1, h2.addr(), tp).start();
  sim.run_until(50_ms);
  const double bits = static_cast<double>(h2.nic().stats().rx_bytes) * 8;
  const double rate = bits / 0.05;
  EXPECT_GT(rate, 9e9) << "saturation must reach ~wire speed";
}

TEST(TrafficTest, InvalidParamsThrow) {
  sim::Simulator sim(61);
  Network net(sim);
  auto& h1 = net.add_host("h1");
  auto& h2 = net.add_host("h2");
  net.connect(h1, h2);
  TrafficParams bad_rate;
  bad_rate.rate_bps = 0;
  EXPECT_THROW(TrafficGenerator(sim, h1, h2.addr(), bad_rate), std::invalid_argument);
  TrafficParams bad_size;
  bad_size.frame_bytes = 10;
  EXPECT_THROW(TrafficGenerator(sim, h1, h2.addr(), bad_size), std::invalid_argument);
}

TEST(TopologyTest, StarShape) {
  sim::Simulator sim(62);
  Network net(sim);
  auto star = build_star(net, 5);
  EXPECT_EQ(star.hosts.size(), 5u);
  EXPECT_EQ(star.hub->port_count(), 5u);
  EXPECT_EQ(net.cables().size(), 5u);
}

TEST(TopologyTest, PaperTreeShape) {
  sim::Simulator sim(63);
  Network net(sim);
  auto tree = build_paper_tree(net);
  EXPECT_EQ(tree.leaves.size(), 8u);
  EXPECT_EQ(tree.root->port_count(), 3u);
  // S1 has 3 leaves + uplink, S2 has 2 + uplink, S3 has 3 + uplink.
  EXPECT_EQ(tree.aggs[0]->port_count(), 4u);
  EXPECT_EQ(tree.aggs[1]->port_count(), 3u);
  EXPECT_EQ(tree.aggs[2]->port_count(), 4u);
  EXPECT_EQ(net.cables().size(), 11u);
}

TEST(TopologyTest, ChainShape) {
  sim::Simulator sim(64);
  Network net(sim);
  auto chain = build_chain(net, 4);
  EXPECT_EQ(chain.switches.size(), 4u);
  EXPECT_EQ(net.cables().size(), 5u);  // 5 hops
  EXPECT_EQ(chain.switches[0]->port_count(), 2u);
}

TEST(TopologyTest, FatTreeShape) {
  sim::Simulator sim(65);
  Network net(sim);
  auto ft = build_fat_tree(net, 4);
  EXPECT_EQ(ft.core.size(), 4u);
  EXPECT_EQ(ft.agg.size(), 8u);
  EXPECT_EQ(ft.edge.size(), 8u);
  EXPECT_EQ(ft.hosts.size(), 16u);
  // Edges: 4 core-agg links per pod * 4 pods + 4 agg-edge per pod * 4 +
  // 2 hosts per edge * 8 = 16 + 16 + 16 = 48.
  EXPECT_EQ(net.cables().size(), 48u);
}

TEST(TopologyTest, FatTreeOddKRejected) {
  sim::Simulator sim(66);
  Network net(sim);
  EXPECT_THROW(build_fat_tree(net, 3), std::invalid_argument);
}

TEST(TopologyTest, HostCannotBeConnectedTwice) {
  sim::Simulator sim(67);
  Network net(sim);
  auto& h1 = net.add_host("h1");
  auto& h2 = net.add_host("h2");
  auto& h3 = net.add_host("h3");
  net.connect(h1, h2);
  EXPECT_THROW(net.connect(h1, h3), std::logic_error);
}

TEST(TopologyTest, DevicesGetDistinctOscillators) {
  sim::Simulator sim(68);
  Network net(sim);
  auto& h1 = net.add_host("h1");
  auto& h2 = net.add_host("h2");
  EXPECT_NE(h1.oscillator().period(), h2.oscillator().period());
}

TEST(TopologyTest, ExplicitPpmHonored) {
  sim::Simulator sim(69);
  Network net(sim);
  auto& h = net.add_host("h", 42.0);
  EXPECT_NEAR(h.oscillator().ppm(), 42.0, 0.2);
}

}  // namespace
}  // namespace dtpsim::net
